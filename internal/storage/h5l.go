package storage

import (
	"sync/atomic"
	"time"

	"repro/internal/h5"
	"repro/internal/pfs"
)

// H5L is the shared-file backend: one H5L container written in parallel by
// every rank, chunk extents pre-reserved from predicted compressed sizes so
// offsets are known before compression finishes, mispredictions relocated
// to the overflow region, and scheduled writes coalesced through the
// compressed data buffer (§4.2).
const H5L = "h5l"

func init() {
	Register(h5lBackend{})
	Register(bpBackend{})
}

type h5lBackend struct{}

func (h5lBackend) Name() string { return H5L }

func (h5lBackend) Create(fs *pfs.FS, name string, ranks int) (Snapshot, error) {
	fw, err := h5.Create(fs, name)
	if err != nil {
		return nil, err
	}
	return &h5Snapshot{name: name, fw: fw}, nil
}

func (h5lBackend) Open(fs *pfs.FS, name string) (SnapshotReader, error) {
	fr, err := h5.Open(fs, name)
	if err != nil {
		return nil, err
	}
	return h5Reader{fr}, nil
}

type h5Snapshot struct {
	name   string
	fw     *h5.FileWriter
	nextDS atomic.Int64 // dataset identity counter for coalescing boundaries
}

func (s *h5Snapshot) Name() string { return s.name }

func (s *h5Snapshot) CreateDataset(spec DatasetSpec) (DatasetWriter, error) {
	filter := h5.FilterNone
	if spec.Compressed {
		filter = h5.FilterSZ
	}
	dw, err := s.fw.CreateDataset(spec.Name, spec.Dims, spec.ElemSize, filter,
		spec.reservations(), spec.RawSizes, spec.Attrs)
	if err != nil {
		return nil, err
	}
	return &h5Dataset{dw: dw, ds: int(s.nextDS.Add(1))}, nil
}

func (s *h5Snapshot) Close() (int, error) {
	oc, _ := s.fw.OverflowStats()
	return oc, s.fw.Close()
}

type h5Dataset struct {
	dw *h5.DatasetWriter
	ds int
}

func (d *h5Dataset) WriteChunk(i int, data []byte) (time.Duration, error) {
	return d.dw.WriteChunk(i, data)
}

func (d *h5Dataset) Stage(i int, data []byte) (StagedChunk, error) {
	off, err := d.dw.MarkChunk(i, int64(len(data)))
	if err != nil {
		return nil, err
	}
	return h5Staged{ds: d.ds, off: off, data: data}, nil
}

// h5Staged is a chunk whose final shared-file offset is already fixed.
type h5Staged struct {
	ds   int
	off  int64
	data []byte
}

func (c h5Staged) Size() int64 { return int64(len(c.data)) }

// NewChunkSink returns the compressed data buffer (§4.2): consecutive
// writes into the same dataset's reserved extent coalesce into one span
// (slack between chunks is zero-filled — it lies inside this dataset's own
// reservation, so nothing else can live there). A dataset switch, a
// backward offset (e.g. an overflow-relocated chunk), an oversized gap, or
// reaching capacity flushes.
func (s *h5Snapshot) NewChunkSink(bufferBytes int, onWrite WriteObserver) ChunkSink {
	if bufferBytes <= 0 {
		bufferBytes = 1 // degenerate: flush after every chunk
	}
	return &spanBuffer{fw: s.fw, cap: bufferBytes, onWrite: onWrite}
}

type spanBuffer struct {
	fw      *h5.FileWriter
	cap     int
	onWrite WriteObserver

	ds     int
	start  int64
	buf    []byte
	blocks int
}

func (sb *spanBuffer) Write(c StagedChunk) error {
	sc, ok := c.(h5Staged)
	if !ok {
		return errForeignChunk(H5L, c)
	}
	if sb.blocks > 0 {
		end := sb.start + int64(len(sb.buf))
		gap := sc.off - end
		if sc.ds != sb.ds || gap < 0 || gap > int64(sb.cap) ||
			len(sb.buf)+int(gap)+len(sc.data) > 2*sb.cap {
			if err := sb.Flush(); err != nil {
				return err
			}
		}
	}
	if sb.blocks == 0 {
		sb.ds = sc.ds
		sb.start = sc.off
	}
	pad := int(sc.off - (sb.start + int64(len(sb.buf))))
	for i := 0; i < pad; i++ {
		sb.buf = append(sb.buf, 0)
	}
	sb.buf = append(sb.buf, sc.data...)
	sb.blocks++
	if len(sb.buf) >= sb.cap {
		return sb.Flush()
	}
	return nil
}

func (sb *spanBuffer) Flush() error {
	if sb.blocks == 0 {
		return nil
	}
	t0 := time.Now()
	if _, err := sb.fw.WriteAtRaw(sb.start, sb.buf); err != nil {
		return err
	}
	if sb.onWrite != nil {
		sb.onWrite(int64(len(sb.buf)), time.Since(t0).Seconds())
	}
	sb.buf = sb.buf[:0]
	sb.blocks = 0
	return nil
}

type h5Reader struct {
	fr *h5.FileReader
}

func (r h5Reader) Datasets() []string { return r.fr.Datasets() }

func (r h5Reader) Attrs(dataset string) (map[string]string, error) {
	dm, err := r.fr.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	return dm.Attrs, nil
}

func (r h5Reader) ReadChunk(dataset string, i int) ([]byte, error) {
	return r.fr.ReadChunk(dataset, i)
}
