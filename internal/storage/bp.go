package storage

import (
	"fmt"
	"time"

	"repro/internal/bp"
	"repro/internal/pfs"
)

// BP is the multi-file backend: every rank appends compressed chunks to its
// own sub-file (ADIOS-BP style, the paper's §6 future-work setting), so
// there are no reservations to overflow and nothing to coalesce.
const BP = "bp"

type bpBackend struct{}

func (bpBackend) Name() string { return BP }

func (bpBackend) Create(fs *pfs.FS, name string, ranks int) (Snapshot, error) {
	bw, err := bp.Create(fs, name, ranks)
	if err != nil {
		return nil, err
	}
	return &bpSnapshot{name: name, bw: bw}, nil
}

func (bpBackend) Open(fs *pfs.FS, name string) (SnapshotReader, error) {
	br, err := bp.Open(fs, name)
	if err != nil {
		return nil, err
	}
	return bpReader{br}, nil
}

type bpSnapshot struct {
	name string
	bw   *bp.Writer
	rc   *RecoveryOptions // set once by WithRecovery before writes start
}

func (s *bpSnapshot) Name() string { return s.name }

func (s *bpSnapshot) armRecovery(opts *RecoveryOptions) { s.rc = opts }

func (s *bpSnapshot) CreateDataset(spec DatasetSpec) (DatasetWriter, error) {
	filter := bp.FilterNone
	if spec.Compressed {
		filter = bp.FilterSZ
	}
	dw, err := s.bw.CreateDataset(spec.Rank, spec.Name, spec.Dims, spec.ElemSize,
		filter, spec.RawSizes, spec.Attrs)
	if err != nil {
		return nil, err
	}
	return bpDataset{dw: dw, snap: s}, nil
}

// Close finalizes the index; append sub-files cannot overflow.
func (s *bpSnapshot) Close() (int, error) { return 0, s.bw.Close() }

type bpDataset struct {
	dw   *bp.DatasetWriter
	snap *bpSnapshot
}

func (d bpDataset) WriteChunk(i int, data []byte) (time.Duration, error) {
	return retryWrite(d.snap.rc, func() (time.Duration, error) {
		return d.dw.WriteChunk(i, data)
	})
}

// Stage merely binds the chunk to its dataset: offsets are resolved at
// append time, so nothing is fixed here.
func (d bpDataset) Stage(i int, data []byte) (StagedChunk, error) {
	return d.StageWithFallback(i, data, nil)
}

// StageWithFallback implements DegradableStager.
func (d bpDataset) StageWithFallback(i int, data []byte, raw func() []byte) (StagedChunk, error) {
	return bpStaged{dw: d.dw, i: i, data: data, raw: raw}, nil
}

type bpStaged struct {
	dw   *bp.DatasetWriter
	i    int
	data []byte
	raw  func() []byte // lazy uncompressed fallback (nil = none)
}

func (c bpStaged) Size() int64 { return int64(len(c.data)) }

// NewChunkSink returns a write-through sink: appends never coalesce, so
// bufferBytes is ignored and Flush is a no-op.
func (s *bpSnapshot) NewChunkSink(bufferBytes int, onWrite WriteObserver) ChunkSink {
	return bpSink{rc: s.rc, onWrite: onWrite}
}

type bpSink struct {
	rc      *RecoveryOptions // nil when the snapshot is unarmed
	onWrite WriteObserver
}

func (k bpSink) Write(c StagedChunk) error {
	sc, ok := c.(bpStaged)
	if !ok {
		return errForeignChunk(BP, c)
	}
	d, err := retryWrite(k.rc, func() (time.Duration, error) {
		return sc.dw.WriteChunk(sc.i, sc.data)
	})
	if err != nil {
		if k.rc == nil || !exhaustedTransient(err) || sc.raw == nil {
			return err
		}
		// Degrade: append the chunk uncompressed with a fresh retry budget.
		raw := sc.raw()
		d, err = retryWrite(k.rc, func() (time.Duration, error) {
			return sc.dw.WriteChunkDegraded(sc.i, raw)
		})
		if err != nil {
			return err
		}
		noteDegraded(k.rc, sc.dw.Name(), sc.i, int64(len(raw)))
		if k.onWrite != nil {
			k.onWrite(int64(len(raw)), d.Seconds())
		}
		return nil
	}
	if k.onWrite != nil {
		k.onWrite(int64(len(sc.data)), d.Seconds())
	}
	return nil
}

func (k bpSink) Flush() error { return nil }

type bpReader struct {
	br *bp.Reader
}

func (r bpReader) Datasets() []string { return r.br.Datasets() }

func (r bpReader) Attrs(dataset string) (map[string]string, error) {
	dm, err := r.br.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	return dm.Attrs, nil
}

func (r bpReader) ReadChunk(dataset string, i int) ([]byte, error) {
	return r.br.ReadChunk(dataset, i)
}

func (r bpReader) ChunkDegraded(dataset string, i int) (bool, error) {
	dm, err := r.br.Dataset(dataset)
	if err != nil {
		return false, err
	}
	if i < 0 || i >= len(dm.Chunks) {
		return false, fmt.Errorf("storage: chunk %d out of range", i)
	}
	return dm.Chunks[i].Degraded, nil
}
