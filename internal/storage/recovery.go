package storage

// Failure recovery for snapshot writers. WithRecovery arms a backend's
// snapshot with a RetryPolicy and a degrade path:
//
//   - Every chunk/span write is wrapped in policy.Do: transient faults from
//     the modelled file system (pfs.FaultPlan) back off and retry; full or
//     corrupt faults surface immediately.
//   - When a *compressed* chunk exhausts its retries and was staged with a
//     raw fallback (StageChunk), the chunk is rerouted uncompressed
//     (compression ratio 1.0) to freshly allocated space — the overflow
//     region for H5L, a tail append for BP — and marked Degraded in the
//     container metadata, so the iteration completes with degraded
//     compression instead of dying. OnDegrade lets the engine feed the
//     achieved ratio back into its predictor so next iteration's offsets
//     stay sane (§4.4).
//
// Retry must live *inside* the adapters, at the true write sites: the
// coalescing span buffer mutates its state as chunks are appended, so a
// generic re-invocation of ChunkSink.Write from outside would double-append.

import (
	"errors"
	"time"

	"repro/internal/obs"
)

// RecoveryOptions configures WithRecovery.
type RecoveryOptions struct {
	// Policy is the retry policy (nil = DefaultRetryPolicy()). Sharing one
	// policy across snapshots aggregates its counters run-wide.
	Policy *RetryPolicy
	// Rec (nil-safe) receives storage.retry.* / storage.degraded.* metrics.
	Rec *obs.Recorder
	// OnDegrade, if set, is called once per chunk rerouted uncompressed,
	// with the dataset name, chunk index, and the raw byte count written.
	OnDegrade func(dataset string, chunk int, rawBytes int64)
}

// recoverable is implemented by backend snapshots that support arming.
type recoverable interface {
	armRecovery(*RecoveryOptions)
}

// WithRecovery arms snapshot s with retry/degrade handling and returns it.
// Snapshots of backends unknown to this package are returned unchanged —
// recovery is a cooperation between the policy and the adapter's write
// sites, not a generic wrapper.
func WithRecovery(s Snapshot, opts RecoveryOptions) Snapshot {
	if opts.Policy == nil {
		opts.Policy = DefaultRetryPolicy()
	}
	if r, ok := s.(recoverable); ok {
		r.armRecovery(&opts)
	}
	return s
}

// DegradableStager is the optional DatasetWriter extension for staging a
// chunk together with the raw (uncompressed) fallback the recovery layer
// writes if the compressed bytes cannot be placed.
type DegradableStager interface {
	DatasetWriter
	// StageWithFallback is Stage plus a lazily-built raw fallback. raw is
	// only invoked if the chunk degrades.
	StageWithFallback(i int, data []byte, raw func() []byte) (StagedChunk, error)
}

// StageChunk stages chunk i through the fallback-aware path when the writer
// supports one (and a fallback was supplied), else through plain Stage.
func StageChunk(dw DatasetWriter, i int, data []byte, raw func() []byte) (StagedChunk, error) {
	if ds, ok := dw.(DegradableStager); ok && raw != nil {
		return ds.StageWithFallback(i, data, raw)
	}
	return dw.Stage(i, data)
}

// retryWrite wraps one WriteChunk-shaped call in the policy when armed.
func retryWrite(rc *RecoveryOptions, op func() (time.Duration, error)) (time.Duration, error) {
	if rc == nil {
		return op()
	}
	var dur time.Duration
	err := rc.Policy.Do(rc.Rec, func() error {
		var e error
		dur, e = op()
		return e
	})
	return dur, err
}

// noteDegraded records one rerouted chunk in metrics and the engine hook.
func noteDegraded(rc *RecoveryOptions, dataset string, chunk int, rawBytes int64) {
	rc.Rec.Count("storage.degraded.chunks", 1)
	rc.Rec.Count("storage.degraded.bytes", float64(rawBytes))
	if rc.OnDegrade != nil {
		rc.OnDegrade(dataset, chunk, rawBytes)
	}
}

// exhaustedTransient reports whether err is a retries-exhausted transient
// failure — the only condition that authorizes degrading.
func exhaustedTransient(err error) bool {
	return errors.Is(err, ErrRetriesExhausted)
}
