package plan_test

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/simapp"
)

// TestEnginesConsumeIdenticalPlans is the engine-parity guarantee of the
// shared planner: for the same workload, internal/core (one whole-world
// plan.Plan call) and internal/simapp (one plan.Plan call per node root,
// with BaseRank translating node-local ranks to global ones) must produce
// byte-identical IterationPlans — same job order, same moved writes, same
// releases. Balancing never crosses nodes, so the decompositions must agree
// exactly; JSON bytes are the equality notion because the plan is what both
// engines execute verbatim.
func TestEnginesConsumeIdenticalPlans(t *testing.T) {
	cases := []struct {
		name    string
		cfg     core.WorkloadConfig
		alg     sched.Algorithm
		balance bool
	}{
		{"nyx-1node-balanced", core.NyxWorkload(4, 4), "", true},
		{"nyx-2nodes-balanced", core.NyxWorkload(8, 4), "", true},
		{"nyx-2nodes-unbalanced", core.NyxWorkload(8, 4), "", false},
		{"nyx-4nodes-skewed", func() core.WorkloadConfig {
			c := core.NyxWorkload(16, 4)
			c.MaxRatioDiff = 14
			c.Seed = 7
			return c
		}(), "", true},
		{"nyx-heavy-skew-moves", func() core.WorkloadConfig {
			// Matches TestParityCoversMovedWrites: balancing provably moves
			// writes here, so byte-equality covers origins and releases.
			c := core.NyxWorkload(4, 4)
			c.MaxRatioDiff = 24
			c.ExactSpread = true
			c.Seed = 7
			return c
		}(), "", true},
		{"warpx-2nodes-balanced", core.WarpXWorkload(8, 4), "", true},
		{"nyx-extjohnson", core.NyxWorkload(8, 4), sched.ExtJohnson, true},
		{"nyx-singleton-nodes", core.NyxWorkload(4, 1), "", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := core.BuildWorkload(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, iter := range []int{0, 1} {
				data := w.Iteration(iter)

				// Engine 1: core plans the whole world in one call.
				corePlan, err := core.PlanOurs(w, data, core.PlanConfig{
					Algorithm: tc.alg, Balance: tc.balance,
				})
				if err != nil {
					t.Fatal(err)
				}

				// Engine 2: simapp's node roots each plan their own node
				// from the same inputs, offset by the node's base rank.
				in := core.PlanInput(data)
				rpn := tc.cfg.RanksPerNode
				simPlan := &plan.IterationPlan{}
				for base := 0; base < len(in.Ranks); base += rpn {
					node, err := simapp.PlanNode(in.Ranks[base:base+rpn], tc.alg, tc.balance, base, nil)
					if err != nil {
						t.Fatal(err)
					}
					simPlan.Ranks = append(simPlan.Ranks, node.Ranks...)
				}

				coreJSON, err := json.Marshal(corePlan)
				if err != nil {
					t.Fatal(err)
				}
				simJSON, err := json.Marshal(simPlan)
				if err != nil {
					t.Fatal(err)
				}
				if string(coreJSON) != string(simJSON) {
					for r := range corePlan.Ranks {
						c, _ := json.Marshal(corePlan.Ranks[r])
						s, _ := json.Marshal(simPlan.Ranks[r])
						if string(c) != string(s) {
							t.Fatalf("iter %d rank %d diverges:\ncore:   %s\nsimapp: %s", iter, r, c, s)
						}
					}
					t.Fatalf("iter %d: plans differ but no rank diverges (length %d vs %d)",
						iter, len(corePlan.Ranks), len(simPlan.Ranks))
				}

				// The plans must also be executable: every rank validates.
				for r := range simPlan.Ranks {
					rp := &simPlan.Ranks[r]
					if err := sched.Validate(rp.Problem, rp.Schedule); err != nil {
						t.Fatalf("iter %d rank %d: %v", iter, r, err)
					}
				}
			}
		})
	}
}

// TestParityCoversMovedWrites guards the parity test itself: at least one
// case must actually move writes between ranks, otherwise the byte-equality
// above would not exercise releases or origin translation.
func TestParityCoversMovedWrites(t *testing.T) {
	// One node whose ranks span a 4x–28x ratio spread: the most loaded rank
	// writes ~7x the least loaded one, well past the 2x balancing threshold.
	cfg := core.NyxWorkload(4, 4)
	cfg.MaxRatioDiff = 24
	cfg.ExactSpread = true
	cfg.Seed = 7
	w, err := core.BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := w.Iteration(0)
	in := core.PlanInput(data)
	moved := 0
	for base := 0; base < len(in.Ranks); base += cfg.RanksPerNode {
		node, err := simapp.PlanNode(in.Ranks[base:base+cfg.RanksPerNode], "", true, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		for r, rp := range node.Ranks {
			for _, pj := range rp.Jobs {
				if pj.Origin.Rank != base+r {
					moved++
				}
			}
		}
	}
	if moved == 0 {
		t.Fatal("skewed 4-node workload moved no writes; parity test lost its teeth")
	}
}
