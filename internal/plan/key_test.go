package plan

import (
	"bytes"
	"testing"

	"repro/internal/sched"
)

func keyTestInput() Input {
	return Input{Ranks: []RankInput{
		{
			Horizon:   12.5,
			CompHoles: []sched.Interval{{Start: 1, End: 2}},
			IOHoles:   []sched.Interval{{Start: 3, End: 4.25}},
			Jobs: []Job{
				{ID: 0, PredComp: 0.5, PredIO: 1.5, PredBytes: 1024},
				{ID: 1, PredComp: 0.25, PredIO: 2.5},
			},
		},
		{
			Horizon: 12.5,
			Jobs:    []Job{{ID: 0, PredComp: 0.75, PredIO: 1.25}},
		},
	}}
}

func TestAppendInputKeyIdentity(t *testing.T) {
	a := AppendInputKey(nil, keyTestInput())
	b := AppendInputKey(nil, keyTestInput())
	if !bytes.Equal(a, b) {
		t.Fatal("identical inputs produced different keys")
	}
	// Appending onto a prefixed buffer extends, not restarts.
	pre := AppendInputKey([]byte("pfx"), keyTestInput())
	if !bytes.Equal(pre[3:], a) || string(pre[:3]) != "pfx" {
		t.Fatal("AppendInputKey did not append to the given buffer")
	}
}

// Every field the planner reads must flip the key: a reuse decision based on
// a key that ignored some field would silently serve a stale plan.
func TestAppendInputKeySensitivity(t *testing.T) {
	base := AppendInputKey(nil, keyTestInput())
	mutations := map[string]func(*Input){
		"horizon":    func(in *Input) { in.Ranks[0].Horizon += 1e-12 },
		"comp hole":  func(in *Input) { in.Ranks[0].CompHoles[0].End += 1e-12 },
		"io hole":    func(in *Input) { in.Ranks[0].IOHoles[0].Start += 1e-12 },
		"job id":     func(in *Input) { in.Ranks[0].Jobs[1].ID = 7 },
		"pred comp":  func(in *Input) { in.Ranks[1].Jobs[0].PredComp += 1e-12 },
		"pred io":    func(in *Input) { in.Ranks[0].Jobs[0].PredIO += 1e-12 },
		"pred bytes": func(in *Input) { in.Ranks[0].Jobs[0].PredBytes++ },
		"drop job":   func(in *Input) { in.Ranks[0].Jobs = in.Ranks[0].Jobs[:1] },
		"drop rank":  func(in *Input) { in.Ranks = in.Ranks[:1] },
		"drop hole":  func(in *Input) { in.Ranks[0].CompHoles = nil },
	}
	for name, mutate := range mutations {
		in := keyTestInput()
		mutate(&in)
		if bytes.Equal(base, AppendInputKey(nil, in)) {
			t.Errorf("mutation %q did not change the input key", name)
		}
	}
}
