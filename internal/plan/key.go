package plan

// Exact-byte identity for a planning input, the session tier's analogue of
// sched.Problem.Fingerprint: two inputs with equal keys feed PlanCtx
// byte-identical data, and the planner is deterministic, so the plans are
// byte-identical too. This is the soundness argument that lets a plan
// session answer a repeated iteration with a compact "reused" token instead
// of re-planning (the paper's iteration-similarity insight, lifted from
// core.Simulator's in-process reuse to the wire).

import (
	"encoding/binary"
	"math"

	"repro/internal/sched"
)

// AppendInputKey appends an exact encoding of in to buf and returns the
// extended slice. Every field the planner reads is encoded — per rank the
// horizon, both hole lists, and the full job table — with float64s as raw
// big-endian bit patterns: no hashing, no rounding, no collisions. The
// planning Config is deliberately not part of the key; it is fixed per
// session, so callers key on input alone.
func AppendInputKey(buf []byte, in Input) []byte {
	var b [8]byte
	putF := func(f float64) {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	putI := func(v int64) {
		binary.BigEndian.PutUint64(b[:], uint64(v))
		buf = append(buf, b[:]...)
	}
	putHoles := func(hs []sched.Interval) {
		putI(int64(len(hs)))
		for _, h := range hs {
			putF(h.Start)
			putF(h.End)
		}
	}
	putI(int64(len(in.Ranks)))
	for _, ri := range in.Ranks {
		putF(ri.Horizon)
		putHoles(ri.CompHoles)
		putHoles(ri.IOHoles)
		putI(int64(len(ri.Jobs)))
		for _, j := range ri.Jobs {
			putI(int64(j.ID))
			putF(j.PredComp)
			putF(j.PredIO)
			putI(j.PredBytes)
		}
	}
	return buf
}
