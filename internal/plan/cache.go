package plan

// Solve memoization: in Table 1 and the Fig 3–8 experiments most ranks
// present byte-identical sched.Problems (same workload profile, same holes),
// and repeated runs of one experiment re-plan identical iterations, so one
// exact solve can serve them all. The cache key is the algorithm plus the
// normalized problem's Fingerprint — an exact encoding, not a hash — and
// Solve is deterministic, so a cache hit returns a schedule byte-identical
// to a fresh solve.

import (
	"context"
	"sync"

	"repro/internal/sched"
)

// SolveCache memoizes sched.Solve results by (algorithm, problem
// fingerprint). It is safe for concurrent use (simapp node roots plan in
// parallel). The zero value is not ready; use NewSolveCache.
type SolveCache struct {
	mu           sync.Mutex
	entries      map[string]*sched.Schedule
	maxEntries   int
	hits, misses uint64
}

// NewSolveCache returns a cache bounded to maxEntries schedules; when full,
// the whole cache is dropped and refilled (planning working sets are small
// and cyclic, so wholesale reset beats eviction bookkeeping). maxEntries <= 0
// selects a default suitable for the bundled experiments.
func NewSolveCache(maxEntries int) *SolveCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &SolveCache{
		entries:    make(map[string]*sched.Schedule),
		maxEntries: maxEntries,
	}
}

// defaultSolveCache is shared by every Plan call that does not bring its own
// cache, so repeated experiment runs (and benchmark iterations) reuse solves
// across calls, not just within one.
var defaultSolveCache = NewSolveCache(0)

// DefaultSolveCache returns the process-wide cache used when Config.Cache is
// nil; exposed so tools and tests can inspect or reset it.
func DefaultSolveCache() *SolveCache { return defaultSolveCache }

// Stats returns the cumulative hit and miss counts.
func (c *SolveCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every cached schedule and zeroes the counters.
func (c *SolveCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*sched.Schedule)
	c.hits, c.misses = 0, 0
}

// solve is Solve without a context, kept for callers that cannot be
// cancelled (tests, benchmarks).
func (c *SolveCache) solve(p *sched.Problem, alg sched.Algorithm) (*sched.Schedule, bool, error) {
	return c.Solve(context.Background(), p, alg)
}

// Solve is the memoized, cancellable sched.Solve and the cache's public
// frontend (the planning daemon calls it directly, behind its single-flight
// coalescer). It normalizes p (as sched.Solve would), so the stored Problem
// ends up byte-identical whether or not the lookup hits. The returned
// Schedule is private to the caller: hits hand out a deep copy, so one rank
// mutating placements cannot corrupt another's plan. The reported hit flag
// distinguishes a memo hit from a fresh solve. Context errors are never
// cached — an abandoned solve leaves the entry absent for the next caller.
func (c *SolveCache) Solve(ctx context.Context, p *sched.Problem, alg sched.Algorithm) (*sched.Schedule, bool, error) {
	if err := p.Normalize(); err != nil {
		return nil, false, err
	}
	key := string(alg) + "\x00" + p.Fingerprint()
	c.mu.Lock()
	if s, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return cloneSchedule(s), true, nil
	}
	c.misses++
	c.mu.Unlock()

	s, err := sched.SolveCtx(ctx, p, alg)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if len(c.entries) >= c.maxEntries {
		c.entries = make(map[string]*sched.Schedule)
	}
	c.entries[key] = cloneSchedule(s)
	c.mu.Unlock()
	return s, false, nil
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	out := *s
	out.Placements = make([]sched.Placement, len(s.Placements))
	copy(out.Placements, s.Placements)
	return &out
}
