package plan

// Solve memoization: in Table 1 and the Fig 3–8 experiments most ranks
// present byte-identical sched.Problems (same workload profile, same holes),
// and repeated runs of one experiment re-plan identical iterations, so one
// exact solve can serve them all. The cache key is the algorithm plus the
// normalized problem's Fingerprint — an exact encoding, not a hash — and
// Solve is deterministic, so a cache hit returns a schedule byte-identical
// to a fresh solve.

import (
	"context"
	"errors"
	"sync"

	"repro/internal/sched"
)

// solveEntry is one memoized solve: the schedule plus the solver diagnostics
// that produced it, so a cache hit reports the same provenance (optimal,
// node count, workers) as the original solve.
type solveEntry struct {
	s    *sched.Schedule
	info sched.SolveInfo
}

// SolveCache memoizes sched.Solve results by (algorithm, problem
// fingerprint). It is safe for concurrent use (simapp node roots plan in
// parallel). The zero value is not ready; use NewSolveCache.
type SolveCache struct {
	mu           sync.Mutex
	entries      map[string]solveEntry
	maxEntries   int
	hits, misses uint64
}

// NewSolveCache returns a cache bounded to maxEntries schedules; when full,
// the whole cache is dropped and refilled (planning working sets are small
// and cyclic, so wholesale reset beats eviction bookkeeping). maxEntries <= 0
// selects a default suitable for the bundled experiments.
func NewSolveCache(maxEntries int) *SolveCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &SolveCache{
		entries:    make(map[string]solveEntry),
		maxEntries: maxEntries,
	}
}

// defaultSolveCache is shared by every Plan call that does not bring its own
// cache, so repeated experiment runs (and benchmark iterations) reuse solves
// across calls, not just within one.
var defaultSolveCache = NewSolveCache(0)

// DefaultSolveCache returns the process-wide cache used when Config.Cache is
// nil; exposed so tools and tests can inspect or reset it.
func DefaultSolveCache() *SolveCache { return defaultSolveCache }

// Stats returns the cumulative hit and miss counts.
func (c *SolveCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every cached schedule and zeroes the counters.
func (c *SolveCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]solveEntry)
	c.hits, c.misses = 0, 0
}

// solve is Solve without a context, kept for callers that cannot be
// cancelled (tests, benchmarks).
func (c *SolveCache) solve(p *sched.Problem, alg sched.Algorithm) (*sched.Schedule, bool, error) {
	return c.Solve(context.Background(), p, alg)
}

// Solve is the memoized, cancellable sched.Solve. The returned Schedule is
// private to the caller: hits hand out a deep copy, so one rank mutating
// placements cannot corrupt another's plan. The reported hit flag
// distinguishes a memo hit from a fresh solve.
func (c *SolveCache) Solve(ctx context.Context, p *sched.Problem, alg sched.Algorithm) (*sched.Schedule, bool, error) {
	s, _, hit, err := c.SolveFull(ctx, p, alg)
	return s, hit, err
}

// SolveFull is Solve plus the solver diagnostics, the cache's public
// frontend (the planning daemon calls it directly, behind its single-flight
// coalescer). It normalizes p (as sched.Solve would), so the stored Problem
// ends up byte-identical whether or not the lookup hits. Context errors are
// never cached — an abandoned solve leaves the entry absent for the next
// caller.
func (c *SolveCache) SolveFull(ctx context.Context, p *sched.Problem, alg sched.Algorithm) (*sched.Schedule, sched.SolveInfo, bool, error) {
	if err := p.Normalize(); err != nil {
		return nil, sched.SolveInfo{}, false, err
	}
	key := string(alg) + "\x00" + p.Fingerprint()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e.s.Clone(), e.info, true, nil
	}
	c.misses++
	c.mu.Unlock()

	s, info, err := sched.SolveInfoCtx(ctx, p, alg)
	if err != nil {
		return nil, sched.SolveInfo{}, false, err
	}
	c.store(key, s, info)
	return s, info, false, nil
}

func (c *SolveCache) store(key string, s *sched.Schedule, info sched.SolveInfo) {
	c.mu.Lock()
	if len(c.entries) >= c.maxEntries {
		c.entries = make(map[string]solveEntry)
	}
	c.entries[key] = solveEntry{s: s.Clone(), info: info}
	c.mu.Unlock()
}

// BatchOutcome is one item's result from SolveBatch. Hit reports that the
// schedule came from the memo cache or from an identical item earlier in the
// same batch rather than a fresh solve.
type BatchOutcome struct {
	Schedule *sched.Schedule
	Info     sched.SolveInfo
	Hit      bool
	Err      error
}

var errNilBatchProblem = errors.New("plan: nil problem in batch")

// SolveBatch is the batched SolveFull: one lock acquisition probes the cache
// for every item, byte-identical items within the batch share a single solve,
// and only the remaining unique misses hit the solver. Errors are isolated
// per item. Results are index-aligned with problems and byte-identical to
// itemwise SolveFull calls (Solve is deterministic).
func (c *SolveCache) SolveBatch(ctx context.Context, problems []*sched.Problem, alg sched.Algorithm) []BatchOutcome {
	out := make([]BatchOutcome, len(problems))
	keys := make([]string, len(problems))
	for i, p := range problems {
		if p == nil {
			out[i].Err = errNilBatchProblem
			continue
		}
		if err := p.Normalize(); err != nil {
			out[i].Err = err
			continue
		}
		keys[i] = string(alg) + "\x00" + p.Fingerprint()
	}

	firstByKey := make(map[string]int, len(problems))
	dups := make(map[int][]int) // first miss index -> in-batch duplicate indices
	var solveOrder []int
	c.mu.Lock()
	for i := range problems {
		if out[i].Err != nil {
			continue
		}
		if e, ok := c.entries[keys[i]]; ok {
			c.hits++
			out[i] = BatchOutcome{Schedule: e.s.Clone(), Info: e.info, Hit: true}
			continue
		}
		if first, ok := firstByKey[keys[i]]; ok {
			c.hits++
			dups[first] = append(dups[first], i)
			continue
		}
		c.misses++
		firstByKey[keys[i]] = i
		solveOrder = append(solveOrder, i)
	}
	c.mu.Unlock()

	for _, i := range solveOrder {
		s, info, err := sched.SolveInfoCtx(ctx, problems[i], alg)
		if err != nil {
			out[i].Err = err
			for _, d := range dups[i] {
				out[d].Err = err
			}
			continue
		}
		c.store(keys[i], s, info)
		out[i] = BatchOutcome{Schedule: s, Info: info}
		for _, d := range dups[i] {
			out[d] = BatchOutcome{Schedule: s.Clone(), Info: info, Hit: true}
		}
	}
	return out
}
