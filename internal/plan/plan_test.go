package plan

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// synthInput builds a deterministic multi-rank input with a skewed I/O load
// so balancing has something to do.
func synthInput(ranks, jobsPerRank int, seed int64) Input {
	rng := rand.New(rand.NewSource(seed))
	in := Input{}
	for r := 0; r < ranks; r++ {
		ri := RankInput{
			Horizon:   10,
			CompHoles: []sched.Interval{{Start: 1, End: 2}, {Start: 5, End: 6}},
			IOHoles:   []sched.Interval{{Start: 3, End: 4}},
		}
		for j := 0; j < jobsPerRank; j++ {
			ri.Jobs = append(ri.Jobs, Job{
				ID:        j,
				PredComp:  0.2 + 0.1*rng.Float64(),
				PredIO:    (0.3 + 0.4*rng.Float64()) * float64(r+1), // skew by rank
				PredBytes: int64(1000 * (j + 1)),
			})
		}
		in.Ranks = append(in.Ranks, ri)
	}
	return in
}

func TestPlanValidatesSchedules(t *testing.T) {
	in := synthInput(4, 6, 1)
	for _, bal := range []bool{false, true} {
		p, err := Plan(in, Config{Balance: bal, RanksPerNode: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Ranks) != 4 {
			t.Fatalf("plans for %d ranks", len(p.Ranks))
		}
		for r, rp := range p.Ranks {
			if err := sched.Validate(rp.Problem, rp.Schedule); err != nil {
				t.Fatalf("rank %d (balance=%v): %v", r, bal, err)
			}
			if len(rp.Jobs) != len(rp.Problem.Jobs) {
				t.Fatalf("rank %d: %d jobs vs %d problem jobs", r, len(rp.Jobs), len(rp.Problem.Jobs))
			}
		}
	}
}

func TestPlanConservesWritesWithinNodes(t *testing.T) {
	in := synthInput(8, 5, 3)
	const rpn = 4
	p, err := Plan(in, Config{Balance: true, RanksPerNode: rpn})
	if err != nil {
		t.Fatal(err)
	}
	writes := make(map[Ref]int)
	for r, rp := range p.Ranks {
		for _, pj := range rp.Jobs {
			if pj.PredIO > 0 {
				writes[pj.Origin]++
				if pj.Origin.Rank/rpn != r/rpn {
					t.Fatalf("write for %+v crossed nodes to rank %d", pj.Origin, r)
				}
			}
			// Compression never moves.
			if pj.PredComp > 0 && pj.Origin.Rank != r {
				t.Fatalf("rank %d compresses foreign job %+v", r, pj.Origin)
			}
		}
	}
	for r, ri := range in.Ranks {
		for _, j := range ri.Jobs {
			if writes[Ref{Rank: r, ID: j.ID}] != 1 {
				t.Fatalf("job %d of rank %d written %d times", j.ID, r, writes[Ref{Rank: r, ID: j.ID}])
			}
		}
	}
}

func TestMovedWritesCarryOriginReleases(t *testing.T) {
	in := synthInput(4, 5, 7)
	p, err := Plan(in, Config{Balance: true, RanksPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Pass-1 compression completions, recomputed independently.
	ref, err := Plan(in, Config{Balance: false, RanksPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	compEnd := make(map[Ref]float64)
	for _, rp := range ref.Ranks {
		for _, pl := range rp.Schedule.Placements {
			compEnd[rp.Jobs[pl.JobID].Origin] = pl.CompEnd
		}
	}
	moved := 0
	for r, rp := range p.Ranks {
		for _, pj := range rp.Jobs {
			if pj.Origin.Rank == r {
				if pj.Release != 0 {
					t.Fatalf("local job %+v has release %v", pj.Origin, pj.Release)
				}
				continue
			}
			moved++
			if pj.PredComp != 0 {
				t.Fatalf("moved-in job %+v kept compression", pj.Origin)
			}
			if pj.Release != compEnd[pj.Origin] {
				t.Fatalf("moved job %+v release %v, want origin comp end %v",
					pj.Origin, pj.Release, compEnd[pj.Origin])
			}
		}
	}
	if moved == 0 {
		t.Fatal("skewed input produced no moved writes")
	}
}

func TestBaseRankOffsetsOrigins(t *testing.T) {
	in := synthInput(2, 3, 5)
	p, err := Plan(in, Config{Balance: true, RanksPerNode: 2, BaseRank: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range p.Ranks {
		for _, pj := range rp.Jobs {
			if pj.Origin.Rank < 6 || pj.Origin.Rank > 7 {
				t.Fatalf("origin rank %d outside base-offset range", pj.Origin.Rank)
			}
		}
	}
}

func TestOrderHelpers(t *testing.T) {
	in := synthInput(1, 6, 9)
	p, err := Plan(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rp := p.Ranks[0]
	starts := make(map[int]sched.Placement)
	for _, pl := range rp.Schedule.Placements {
		starts[pl.JobID] = pl
	}
	co, io := rp.CompOrder(), rp.IOOrder()
	if len(co) != len(rp.Jobs) || len(io) != len(rp.Jobs) {
		t.Fatalf("order lengths %d/%d, want %d", len(co), len(io), len(rp.Jobs))
	}
	for i := 1; i < len(co); i++ {
		if starts[co[i]].CompStart < starts[co[i-1]].CompStart {
			t.Fatal("CompOrder not sorted")
		}
		if starts[io[i]].IOStart < starts[io[i-1]].IOStart {
			t.Fatal("IOOrder not sorted")
		}
	}
}

func TestPlanRejectsBadLayout(t *testing.T) {
	in := synthInput(3, 2, 1)
	if _, err := Plan(in, Config{RanksPerNode: 2}); err == nil {
		t.Fatal("indivisible node layout accepted")
	}
}

func TestOverallIsMaxAcrossRanks(t *testing.T) {
	in := synthInput(4, 4, 11)
	p, err := Plan(in, Config{Balance: true, RanksPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, rp := range p.Ranks {
		if rp.Schedule.Overall > want {
			want = rp.Schedule.Overall
		}
	}
	if got := p.Overall(); got != want {
		t.Fatalf("Overall %v, want %v", got, want)
	}
	if want < 10 {
		t.Fatalf("overall %v below horizon", want)
	}
}

func TestEmptyInput(t *testing.T) {
	p, err := Plan(Input{}, Config{Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ranks) != 0 {
		t.Fatalf("%d ranks from empty input", len(p.Ranks))
	}
}
