package plan

// Concurrent stress for SolveCache, meant to run under -race: the daemon
// hammers one shared cache from every worker at once, so the cache must keep
// its counters consistent and must never let two callers share mutable
// schedule state.

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestSolveCacheConcurrentStress(t *testing.T) {
	const (
		workers  = 16
		perRound = 64 // solves per worker
		keys     = 5  // distinct (problem, algorithm) pairs, heavily shared
	)
	cfg := sched.DefaultGenConfig()
	cfg.Jobs = 12

	probs := make([]*sched.Problem, keys)
	algs := make([]sched.Algorithm, keys)
	want := make([][]byte, keys) // canonical schedule bytes per key
	all := sched.Algorithms()
	for i := range probs {
		probs[i] = sched.RandomProblem(rand.New(rand.NewSource(int64(100+i))), cfg)
		algs[i] = all[i%len(all)]
		s, err := sched.Solve(probs[i], algs[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = b
	}

	c := NewSolveCache(64)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perRound; i++ {
				k := rng.Intn(keys)
				// Fresh copy per call: Solve normalizes its argument in
				// place, and concurrent callers must not share that either.
				p := cloneProblem(probs[k])
				s, _, err := c.Solve(context.Background(), p, algs[k])
				if err != nil {
					errs <- err
					return
				}
				got, err := json.Marshal(s)
				if err != nil {
					errs <- err
					return
				}
				if string(got) != string(want[k]) {
					t.Errorf("worker %d key %d: schedule diverged from canonical solve", w, k)
					return
				}
				// Scribble over the result. If any two callers (or the cache
				// itself) shared this memory, a later hit would return the
				// scribbled bytes and fail the comparison above.
				for j := range s.Placements {
					s.Placements[j].CompStart = -1
					s.Placements[j].IOEnd = 1e18
				}
				s.Makespan = -42
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses := c.Stats()
	if total := hits + misses; total != workers*perRound {
		t.Fatalf("hits %d + misses %d = %d, want %d lookups", hits, misses, total, workers*perRound)
	}
	// Every key is solved at least once; the cache is big enough that no
	// reset happens, so misses is exactly the number of first-touches plus
	// any concurrent double-solves of the same key (two goroutines both miss
	// before either stores). Bound it: at least one miss per key, at most one
	// per worker per key.
	if misses < keys {
		t.Fatalf("misses = %d, want >= %d", misses, keys)
	}
	if misses > workers*keys {
		t.Fatalf("misses = %d, want <= %d", misses, workers*keys)
	}
	if hits == 0 {
		t.Fatal("stress run produced no cache hits")
	}
}

func cloneProblem(p *sched.Problem) *sched.Problem {
	out := *p
	out.Jobs = append([]sched.Job(nil), p.Jobs...)
	out.CompHoles = append([]sched.Interval(nil), p.CompHoles...)
	out.IOHoles = append([]sched.Interval(nil), p.IOHoles...)
	return &out
}
