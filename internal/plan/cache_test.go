package plan

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// figure1Input builds a multi-rank planning input where every rank presents
// the Figure 1 golden instance (§3.1) — the exact situation the memo cache
// exists for: one solve should serve all ranks.
func figure1Input(ranks int) Input {
	p := sched.Figure1Problem()
	in := Input{Ranks: make([]RankInput, ranks)}
	for r := range in.Ranks {
		ri := RankInput{
			Horizon:   p.Horizon,
			CompHoles: append([]sched.Interval(nil), p.CompHoles...),
			IOHoles:   append([]sched.Interval(nil), p.IOHoles...),
		}
		for _, j := range p.Jobs {
			ri.Jobs = append(ri.Jobs, Job{ID: j.ID, PredComp: j.Comp, PredIO: j.IO})
		}
		in.Ranks[r] = ri
	}
	return in
}

// TestPlanMemoizationByteIdentical asserts that cached and uncached plans for
// the Figure 1 golden instance serialize to exactly the same bytes, and that
// the cache actually serves the duplicate ranks.
func TestPlanMemoizationByteIdentical(t *testing.T) {
	const ranks = 6
	in := figure1Input(ranks)
	for _, alg := range sched.Algorithms() {
		cache := NewSolveCache(0)
		cached, err := Plan(in, Config{Algorithm: alg, Cache: cache})
		if err != nil {
			t.Fatalf("%s cached: %v", alg, err)
		}
		uncached, err := Plan(in, Config{Algorithm: alg, DisableCache: true})
		if err != nil {
			t.Fatalf("%s uncached: %v", alg, err)
		}
		cb, err := json.Marshal(cached)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := json.Marshal(uncached)
		if err != nil {
			t.Fatal(err)
		}
		if string(cb) != string(ub) {
			t.Fatalf("%s: cached and uncached IterationPlans differ\ncached:   %s\nuncached: %s", alg, cb, ub)
		}
		hits, misses := cache.Stats()
		if misses != 1 || hits != ranks-1 {
			t.Fatalf("%s: cache stats hits=%d misses=%d, want %d/1 (identical ranks share one solve)",
				alg, hits, misses, ranks-1)
		}
		// A warm second planning call must hit for every rank and still
		// produce the same bytes.
		warm, err := Plan(in, Config{Algorithm: alg, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		wb, err := json.Marshal(warm)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(cb) {
			t.Fatalf("%s: warm plan differs from cold plan", alg)
		}
		if hits2, misses2 := cache.Stats(); misses2 != 1 || hits2 != 2*ranks-1 {
			t.Fatalf("%s: warm stats hits=%d misses=%d, want %d/1", alg, hits2, misses2, 2*ranks-1)
		}
	}
}

// TestPlanMemoizationWithBalance covers the pass-2 path (releases on moved
// writes) — balanced plans must also be identical with and without the cache.
func TestPlanMemoizationWithBalance(t *testing.T) {
	in := figure1Input(4)
	// Skew the IO loads so balancing actually moves writes.
	for r := range in.Ranks {
		for i := range in.Ranks[r].Jobs {
			in.Ranks[r].Jobs[i].PredIO *= float64(1 + r)
		}
	}
	cfg := Config{Balance: true, RanksPerNode: 2, Cache: NewSolveCache(0)}
	cached, err := Plan(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache, cfg.DisableCache = nil, true
	uncached, err := Plan(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := json.Marshal(cached)
	ub, _ := json.Marshal(uncached)
	if string(cb) != string(ub) {
		t.Fatalf("balanced plans differ:\ncached:   %s\nuncached: %s", cb, ub)
	}
}

// TestPlanCacheCounters checks the obs export: hit/miss counts for one Plan
// call must land on the recorder's counters.
func TestPlanCacheCounters(t *testing.T) {
	rec := obs.NewRecorder()
	_, err := Plan(figure1Input(5), Config{Cache: NewSolveCache(0), Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("plan.solve.cache.miss"); got != 1 {
		t.Fatalf("miss counter = %v, want 1", got)
	}
	if got := rec.Counter("plan.solve.cache.hit"); got != 4 {
		t.Fatalf("hit counter = %v, want 4", got)
	}
}

// TestSolveCacheBounded ensures the cache resets rather than growing without
// bound.
func TestSolveCacheBounded(t *testing.T) {
	c := NewSolveCache(8)
	for i := 0; i < 40; i++ {
		p := sched.Figure1Problem()
		p.Horizon += float64(i) // unique fingerprint each round
		if _, _, err := c.solve(p, sched.ExtJohnsonBF); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n > 8 {
		t.Fatalf("cache grew to %d entries, bound is 8", n)
	}
}
