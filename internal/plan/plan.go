// Package plan owns the paper's per-iteration planning pipeline (§3.3–§3.4,
// §4): given every rank's fine-grained block descriptors (predicted
// compression and write durations), obstacle profile (busy intervals +
// horizon), a scheduling algorithm, and the balance flag, it produces the
// IterationPlan both execution engines consume — one scheduling pass per
// rank, then (optionally) intra-node I/O balancing with a re-scheduling
// pass whose moved writes carry release times.
//
// The plan is pure data: per-rank sched.Problem + sched.Schedule plus the
// job table mapping schedule slots back to their origin (rank, job ID).
// internal/core maps it onto the discrete-event simulator in virtual time;
// internal/simapp maps it onto goroutines in wall clock. Keeping the
// planner here — rather than once per engine — is what makes a new engine
// or workload a leaf-level addition.
package plan

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/balance"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Job describes one schedulable compression+write pair before planning. ID
// is the engine's identity for the job (core: block index; simapp: chunk
// number) and must be unique within its rank.
type Job struct {
	ID        int     `json:"id"`
	PredComp  float64 `json:"predComp"`
	PredIO    float64 `json:"predIO"`
	PredBytes int64   `json:"predBytes,omitempty"`
}

// RankInput is one rank's planning input: its jobs and the previous
// iteration's profile (the paper's iteration-similarity assumption).
type RankInput struct {
	Jobs      []Job            `json:"jobs"`
	CompHoles []sched.Interval `json:"compHoles,omitempty"`
	IOHoles   []sched.Interval `json:"ioHoles,omitempty"`
	Horizon   float64          `json:"horizon"`
}

// Input is the set of ranks planned together. Core plans the whole world in
// one call; each simapp node root plans just its node (with Config.BaseRank
// set) — the parity test asserts both decompositions yield identical plans.
type Input struct {
	Ranks []RankInput `json:"ranks"`
}

// Config controls one planning pass.
type Config struct {
	// Algorithm is the scheduling heuristic; empty selects ExtJohnson+BF,
	// the paper's pick after Table 1.
	Algorithm sched.Algorithm `json:"algorithm,omitempty"`
	// Balance enables intra-node I/O workload balancing (§3.4).
	Balance bool `json:"balance,omitempty"`
	// RanksPerNode partitions Input.Ranks into nodes of this size
	// (balancing never crosses nodes); 0 treats all ranks as one node.
	RanksPerNode int `json:"ranksPerNode,omitempty"`
	// BaseRank is added to every Ref.Rank in the output, so a node-local
	// planning call can emit globally meaningful origin ranks.
	BaseRank int `json:"baseRank,omitempty"`

	// Cache overrides the process-wide solve memo cache; nil selects
	// DefaultSolveCache(). DisableCache turns memoization off entirely
	// (every rank is solved afresh) — plans are byte-identical either way,
	// so this exists for parity tests and solver benchmarking.
	Cache        *SolveCache `json:"-"`
	DisableCache bool        `json:"-"`
	// Rec, when non-nil, receives the planner's cache counters
	// (plan.solve.cache.hit / plan.solve.cache.miss) for this call.
	Rec *obs.Recorder `json:"-"`
}

// batchSolver returns the batched sched.Solve frontend for one Plan call:
// either the memoizing cache (one lock probe for the whole batch, in-batch
// dedup) or the raw batch solver, with hit/miss counts reported to cfg.Rec
// when tracing. The returned schedules are index-aligned with the problems;
// on failure it reports the first failing index for error attribution.
func (c Config) batchSolver() func(context.Context, []*sched.Problem, sched.Algorithm) ([]*sched.Schedule, int, error) {
	if c.DisableCache {
		return func(ctx context.Context, ps []*sched.Problem, alg sched.Algorithm) ([]*sched.Schedule, int, error) {
			results := sched.SolveBatchCtx(ctx, ps, alg)
			out := make([]*sched.Schedule, len(results))
			for i, r := range results {
				if r.Err != nil {
					return nil, i, r.Err
				}
				out[i] = r.Schedule
			}
			return out, -1, nil
		}
	}
	cache := c.Cache
	if cache == nil {
		cache = defaultSolveCache
	}
	rec := c.Rec
	return func(ctx context.Context, ps []*sched.Problem, alg sched.Algorithm) ([]*sched.Schedule, int, error) {
		outcomes := cache.SolveBatch(ctx, ps, alg)
		out := make([]*sched.Schedule, len(outcomes))
		var hits, misses float64
		for i, o := range outcomes {
			if o.Err != nil {
				return nil, i, o.Err
			}
			if o.Hit {
				hits++
			} else {
				misses++
			}
			out[i] = o.Schedule
		}
		if rec.Enabled() {
			if hits > 0 {
				rec.Count("plan.solve.cache.hit", hits)
			}
			if misses > 0 {
				rec.Count("plan.solve.cache.miss", misses)
			}
		}
		return out, -1, nil
	}
}

func (c Config) algorithm() sched.Algorithm {
	if c.Algorithm == "" {
		return sched.ExtJohnsonBF
	}
	return c.Algorithm
}

// Ref identifies a job by its origin: the rank that compresses it (global
// index, i.e. position in Input.Ranks plus Config.BaseRank) and its Job.ID
// there.
type Ref struct {
	Rank int `json:"rank"`
	ID   int `json:"id"`
}

// PlannedJob is one schedulable slot on a rank after balancing: its
// compression runs here iff Origin names the planning rank; a moved-in
// write carries Release (the origin's predicted compression completion) and
// zero PredComp; a moved-away write keeps its compression but zero PredIO.
type PlannedJob struct {
	Origin    Ref     `json:"origin"`
	PredComp  float64 `json:"predComp,omitempty"`
	PredIO    float64 `json:"predIO,omitempty"`
	PredBytes int64   `json:"predBytes,omitempty"`
	Release   float64 `json:"release,omitempty"`
}

// RankPlan is one rank's solved iteration plan. The index of a job in Jobs
// equals its sched.Job.ID in Problem and its Placement.JobID in Schedule.
type RankPlan struct {
	Jobs     []PlannedJob    `json:"jobs"`
	Problem  *sched.Problem  `json:"problem"`
	Schedule *sched.Schedule `json:"schedule"`
}

// IterationPlan is one iteration's complete plan for a set of ranks.
type IterationPlan struct {
	Ranks []RankPlan `json:"ranks"`
}

// Overall returns the planner's predicted iteration duration: the maximum
// T_overall across ranks (the Table 1 quantity).
func (p *IterationPlan) Overall() float64 {
	max := 0.0
	for _, rp := range p.Ranks {
		if rp.Schedule != nil && rp.Schedule.Overall > max {
			max = rp.Schedule.Overall
		}
	}
	return max
}

// CompOrder returns the rank's job indices sorted by scheduled compression
// start — the execution order for the main thread.
func (rp *RankPlan) CompOrder() []int {
	return orderBy(rp.Schedule, func(pl sched.Placement) float64 { return pl.CompStart })
}

// IOOrder returns the rank's job indices sorted by scheduled I/O start —
// the execution order for the background thread.
func (rp *RankPlan) IOOrder() []int {
	return orderBy(rp.Schedule, func(pl sched.Placement) float64 { return pl.IOStart })
}

func orderBy(s *sched.Schedule, key func(sched.Placement) float64) []int {
	type slot struct {
		id    int
		start float64
	}
	slots := make([]slot, 0, len(s.Placements))
	for _, pl := range s.Placements {
		slots = append(slots, slot{pl.JobID, key(pl)})
	}
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].start < slots[b].start })
	out := make([]int, len(slots))
	for i, sl := range slots {
		out[i] = sl.id
	}
	return out
}

// problem builds the scheduling instance for one rank's planned jobs: the
// sched.Job.ID is the slot index, compression is dropped for moved-in
// writes (it runs on the origin rank), and releases carry over.
func problem(ri RankInput, jobs []PlannedJob) *sched.Problem {
	p := &sched.Problem{Horizon: ri.Horizon}
	p.CompHoles = append(p.CompHoles, ri.CompHoles...)
	p.IOHoles = append(p.IOHoles, ri.IOHoles...)
	for i, pj := range jobs {
		p.Jobs = append(p.Jobs, sched.Job{
			ID: i, Comp: pj.PredComp, IO: pj.PredIO, Release: pj.Release,
		})
	}
	return p
}

// Plan runs the in situ planner over the given ranks. Pass 1 schedules each
// rank's own jobs independently; with cfg.Balance, the per-node balancing
// of §3.4 then reassigns whole writes from the most to the least loaded
// rank and a second scheduling pass places the adjusted job sets, with each
// moved write released by its origin's pass-1 predicted compression end.
func Plan(in Input, cfg Config) (*IterationPlan, error) {
	return PlanCtx(context.Background(), in, cfg)
}

// PlanCtx is Plan with cooperative cancellation: the context is threaded
// into the solver and checked per solve, so a deadline abandons a multi-rank
// planning call between solves instead of running it to completion — the
// planning daemon's per-request deadlines depend on this. A nil ctx behaves
// like context.Background().
//
// Each pass issues ONE batched solve over every rank's problem instead of N
// independent solves: normalization, fingerprinting, and the cache lock are
// amortized across the batch, and byte-identical per-rank problems (the
// common case — most ranks share a workload profile) collapse to a single
// solve. sched.Solve is deterministic, so the resulting plans are
// byte-identical to the itemwise formulation.
func PlanCtx(ctx context.Context, in Input, cfg Config) (*IterationPlan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(in.Ranks)
	out := &IterationPlan{Ranks: make([]RankPlan, n)}
	if n == 0 {
		return out, nil
	}
	rpn := cfg.RanksPerNode
	if rpn <= 0 {
		rpn = n
	}
	if n%rpn != 0 {
		return nil, fmt.Errorf("plan: %d ranks not divisible into nodes of %d", n, rpn)
	}
	alg := cfg.algorithm()
	solveBatch := cfg.batchSolver()

	// Pass 1: every rank schedules its own jobs — one batch across ranks.
	problems := make([]*sched.Problem, n)
	for r, ri := range in.Ranks {
		rp := RankPlan{}
		for _, j := range ri.Jobs {
			rp.Jobs = append(rp.Jobs, PlannedJob{
				Origin:    Ref{Rank: cfg.BaseRank + r, ID: j.ID},
				PredComp:  j.PredComp,
				PredIO:    j.PredIO,
				PredBytes: j.PredBytes,
			})
		}
		rp.Problem = problem(ri, rp.Jobs)
		problems[r] = rp.Problem
		out.Ranks[r] = rp
	}
	scheds, failed, err := solveBatch(ctx, problems, alg)
	if err != nil {
		return nil, fmt.Errorf("plan: rank %d pass 1: %w", failed, err)
	}
	for r := range out.Ranks {
		out.Ranks[r].Schedule = scheds[r]
	}
	if !cfg.Balance || rpn == 1 {
		return out, nil
	}

	// Predicted compression completion per job: the release time a moved
	// write must respect on its destination rank.
	predCompEnd := make(map[Ref]float64)
	for r, rp := range out.Ranks {
		for _, pl := range rp.Schedule.Placements {
			predCompEnd[Ref{Rank: cfg.BaseRank + r, ID: in.Ranks[r].Jobs[pl.JobID].ID}] = pl.CompEnd
		}
	}

	// Balancing per node, then pass 2 re-scheduling with moved writes —
	// again one batch across all nodes' adjusted job sets.
	balanced := &IterationPlan{Ranks: make([]RankPlan, n)}
	bProblems := make([]*sched.Problem, n)
	for base := 0; base < n; base += rpn {
		tasks := make([][]balance.Task, rpn)
		for li := 0; li < rpn; li++ {
			for idx, j := range in.Ranks[base+li].Jobs {
				tasks[li] = append(tasks[li], balance.Task{
					Rank: li, Index: idx, Dur: j.PredIO, Bytes: j.PredBytes,
				})
			}
		}
		bplan, err := balance.Balance(tasks)
		if err != nil {
			return nil, fmt.Errorf("plan: node at rank %d: %w", base, err)
		}
		for li := 0; li < rpn; li++ {
			r := base + li
			ri := in.Ranks[r]
			rp := RankPlan{}
			// Own compressions always stay; whether the write stays depends
			// on the balancing assignment.
			keepWrite := make(map[int]bool) // index into ri.Jobs
			var foreign []balance.Ref
			for _, ref := range bplan.PerRank[li] {
				if ref.Rank == li {
					keepWrite[ref.Index] = true
				} else {
					foreign = append(foreign, ref)
				}
			}
			for idx, j := range ri.Jobs {
				pj := PlannedJob{
					Origin:    Ref{Rank: cfg.BaseRank + r, ID: j.ID},
					PredComp:  j.PredComp,
					PredBytes: j.PredBytes,
				}
				if keepWrite[idx] {
					pj.PredIO = j.PredIO
				}
				rp.Jobs = append(rp.Jobs, pj)
			}
			for _, ref := range foreign {
				oj := in.Ranks[base+ref.Rank].Jobs[ref.Index]
				origin := Ref{Rank: cfg.BaseRank + base + ref.Rank, ID: oj.ID}
				rp.Jobs = append(rp.Jobs, PlannedJob{
					Origin:    origin,
					PredIO:    oj.PredIO,
					PredBytes: oj.PredBytes,
					Release:   predCompEnd[origin],
				})
			}
			rp.Problem = problem(ri, rp.Jobs)
			bProblems[r] = rp.Problem
			balanced.Ranks[r] = rp
		}
	}
	scheds, failed, err = solveBatch(ctx, bProblems, alg)
	if err != nil {
		return nil, fmt.Errorf("plan: rank %d pass 2: %w", failed, err)
	}
	for r := range balanced.Ranks {
		balanced.Ranks[r].Schedule = scheds[r]
	}
	return balanced, nil
}
