package sched

import (
	"context"
	"errors"
)

// BatchResult is one item's outcome in SolveBatchCtx. Err is set per item —
// one malformed instance never fails its neighbours — and Schedule is nil
// iff Err is non-nil.
type BatchResult struct {
	Schedule *Schedule
	Info     SolveInfo
	Err      error
	// Deduped reports that this item was byte-identical (same fingerprint)
	// to an earlier item in the batch and reuses its solve.
	Deduped bool
}

var errNilProblem = errors.New("sched: nil problem in batch")

// SolveBatchCtx solves many independent instances in one call, the shape the
// intra-node balancing pass produces (N per-node problems per iteration).
// Normalization and fingerprinting happen once per item, and items with
// identical fingerprints share a single solve (per-node problems are
// frequently byte-identical across ranks) — the duplicate items receive
// deep copies, so results are safe to mutate independently.
//
// The returned slice is index-aligned with problems. Errors are isolated
// per item; a cancelled context fails the not-yet-solved remainder with the
// context's error. Solve is deterministic, so batched results are
// byte-identical to item-by-item SolveCtx calls.
func SolveBatchCtx(ctx context.Context, problems []*Problem, alg Algorithm) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(problems))
	firstByKey := make(map[string]int, len(problems))
	dups := make(map[int][]int) // first index -> duplicate indices
	order := make([]int, 0, len(problems))
	for i, p := range problems {
		if p == nil {
			out[i].Err = errNilProblem
			continue
		}
		if err := p.Normalize(); err != nil {
			out[i].Err = err
			continue
		}
		key := p.Fingerprint()
		if first, ok := firstByKey[key]; ok {
			dups[first] = append(dups[first], i)
			continue
		}
		firstByKey[key] = i
		order = append(order, i)
	}
	for _, i := range order {
		s, info, err := SolveInfoCtx(ctx, problems[i], alg)
		if err != nil {
			out[i].Err = err
			for _, d := range dups[i] {
				out[d] = BatchResult{Err: err, Deduped: true}
			}
			continue
		}
		out[i] = BatchResult{Schedule: s, Info: info}
		for _, d := range dups[i] {
			out[d] = BatchResult{Schedule: s.Clone(), Info: info, Deduped: true}
		}
	}
	return out
}
