package sched

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates every (comp order, io order) pair and returns the
// best Overall — the ground truth the exact solver must match on tiny
// instances. Validity of the ASAP-compaction argument (any schedule is
// dominated by the ASAP schedule of its induced orders) makes this the true
// optimum over all feasible schedules.
func bruteForce(p *Problem) float64 {
	n := len(p.Jobs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	best := math.Inf(1)
	permute(idx, func(compOrder []int) {
		idx2 := make([]int, n)
		copy(idx2, idx)
		permute(idx2, func(ioOrder []int) {
			s := simulateOrders(p, compOrder, ioOrder)
			if s.Overall < best {
				best = s.Overall
			}
		})
	})
	if n == 0 {
		return p.Horizon
	}
	return best
}

// permute calls fn with every permutation of xs (Heap's algorithm; xs is
// reused, so fn must not retain it).
func permute(xs []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(xs)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				xs[i], xs[k-1] = xs[k-1], xs[i]
			} else {
				xs[0], xs[k-1] = xs[k-1], xs[0]
			}
		}
	}
	if len(xs) == 0 {
		fn(xs)
		return
	}
	rec(len(xs))
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		cfg := GenConfig{
			Jobs:       1 + rng.Intn(4), // 4! x 4! = 576 pairs max
			CompHoles:  rng.Intn(3),
			IOHoles:    rng.Intn(3),
			Horizon:    rng.Float64() * 0.5, // small horizon: makespan matters
			HoleFrac:   rng.Float64() * 0.6,
			MeanComp:   0.05 + rng.Float64()*0.1,
			MeanIO:     0.05 + rng.Float64()*0.1,
			JitterFrac: rng.Float64(),
		}
		p := RandomProblem(rng, cfg)
		want := bruteForce(p)
		res, err := SolveExact(p, DefaultExactNodeLimit)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: capped on a %d-job instance", trial, cfg.Jobs)
		}
		if math.Abs(res.Overall-want) > 1e-9 {
			t.Fatalf("trial %d (%d jobs): exact %v != brute force %v",
				trial, cfg.Jobs, res.Overall, want)
		}
		if err := Validate(p, res.Schedule); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBruteForceConfirmsFigure1Optimum(t *testing.T) {
	p := Figure1Problem()
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := bruteForce(p); got != 12 {
		t.Fatalf("Figure 1 brute-force optimum = %v, want 12", got)
	}
}
