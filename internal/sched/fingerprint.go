package sched

import (
	"encoding/binary"
	"math"
)

// Fingerprint returns an exact identity key for the scheduling instance: two
// problems have equal fingerprints iff horizon, hole lists, and job lists are
// field-for-field identical (float64 bit patterns, so no rounding or hash
// collisions). Callers should Normalize first so instances that differ only
// in hole ordering or overlap compare equal. The key is used to memoize
// Solve results — Solve is deterministic, so one schedule serves every
// problem with the same fingerprint and algorithm.
func (p *Problem) Fingerprint() string {
	buf := make([]byte, 0, 8+8+16*(len(p.CompHoles)+len(p.IOHoles))+8+32*len(p.Jobs))
	var b [8]byte
	putF := func(f float64) {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	putI := func(v int) {
		binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
		buf = append(buf, b[:]...)
	}
	putF(p.Horizon)
	putI(len(p.CompHoles))
	for _, h := range p.CompHoles {
		putF(h.Start)
		putF(h.End)
	}
	putI(len(p.IOHoles))
	for _, h := range p.IOHoles {
		putF(h.Start)
		putF(h.End)
	}
	putI(len(p.Jobs))
	for _, j := range p.Jobs {
		putI(j.ID)
		putF(j.Comp)
		putF(j.IO)
		putF(j.Release)
	}
	return string(buf)
}
