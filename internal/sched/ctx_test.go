package sched

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestSolveCtxFailsFastWhenDone: an already-expired context short-circuits
// every algorithm before any work happens.
func TestSolveCtxFailsFastWhenDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Figure1Problem()
	for _, alg := range append(Algorithms(), Exact) {
		if _, err := SolveCtx(ctx, p, alg); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", alg, err)
		}
	}
}

// TestSolveCtxNilBehavesLikeBackground: nil is the "cannot cancel" context.
func TestSolveCtxNilBehavesLikeBackground(t *testing.T) {
	s, err := SolveCtx(nil, Figure1Problem(), ExtJohnsonBF)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(Figure1Problem(), ExtJohnsonBF)
	if err != nil {
		t.Fatal(err)
	}
	if s.Overall != ref.Overall {
		t.Fatalf("nil-ctx overall %v != background overall %v", s.Overall, ref.Overall)
	}
}

// cancelAfterPolls reports Err() == Canceled starting from the nth call —
// a deterministic stand-in for "the deadline fired mid-search".
type cancelAfterPolls struct {
	context.Context
	calls, after int
}

func (c *cancelAfterPolls) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestSolveExactCtxCancelsMidSearch: once the search is past its entry check
// the next context poll must abort it with the context's error.
func TestSolveExactCtxCancelsMidSearch(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = MaxExactJobs
	p := RandomProblem(rand.New(rand.NewSource(3)), cfg)
	ctx := &cancelAfterPolls{Context: context.Background(), after: 1}
	start := time.Now()
	res, err := SolveExactCtx(ctx, p, 1<<40)
	if err == nil {
		// The search may legitimately finish before the first poll window
		// (8k nodes) on an easy instance; then it must be optimal.
		if !res.Optimal {
			t.Fatalf("no error but non-optimal result (nodes=%d)", res.Nodes)
		}
		if res.Nodes > 2*ctxPollEvery {
			t.Fatalf("searched %d nodes past a cancelled context", res.Nodes)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
