package sched

import "sort"

// timeline tracks one machine's occupancy: fixed holes plus the tasks placed
// so far. It answers two placement queries:
//
//   - placeAfterFrontier: list-scheduling semantics — the task starts no
//     earlier than every previously placed task's end (§3.3's "as soon as
//     possible after already scheduled tasks").
//   - placeEarliest: backfilling semantics — the task may use any idle gap,
//     which by construction never delays an already placed task.
type timeline struct {
	holes    []Interval // fixed obstacles, sorted, non-overlapping
	busy     []Interval // placed tasks, kept sorted by Start
	frontier float64    // max end of placed tasks
}

func newTimeline(holes []Interval) *timeline {
	return &timeline{holes: holes}
}

func (tl *timeline) clone() *timeline {
	c := &timeline{holes: tl.holes, frontier: tl.frontier}
	c.busy = append([]Interval(nil), tl.busy...)
	return c
}

// fitsHoles returns the earliest start >= t0 such that [start, start+d) does
// not intersect any hole.
func (tl *timeline) fitsHoles(t0, d float64) float64 {
	start := t0
	for _, h := range tl.holes {
		if h.Len() <= 0 || h.End <= start+timeEps {
			continue // hole entirely behind us
		}
		if start+d <= h.Start+timeEps {
			return start // task finishes before this hole begins
		}
		start = h.End // collision: jump past the hole (holes are sorted)
	}
	return start
}

// placeAfterFrontier places a task of duration d starting no earlier than
// max(t0, frontier), skipping holes, and records it.
func (tl *timeline) placeAfterFrontier(t0, d float64) Interval {
	if t0 < tl.frontier {
		t0 = tl.frontier
	}
	start := tl.fitsHoles(t0, d)
	iv := Interval{start, start + d}
	tl.insert(iv)
	return iv
}

// placeEarliest places a task of duration d at the earliest start >= t0 that
// avoids both holes and already placed tasks, and records it.
func (tl *timeline) placeEarliest(t0, d float64) Interval {
	start := t0
	for {
		start = tl.fitsHoles(start, d)
		conflict := false
		for _, b := range tl.busy {
			if b.Len() <= 0 {
				continue
			}
			if start < b.End && b.Start < start+d {
				start = b.End
				conflict = true
				break
			}
			if b.Start >= start+d {
				break // busy sorted by Start; no later task can conflict
			}
		}
		if !conflict {
			iv := Interval{start, start + d}
			tl.insert(iv)
			return iv
		}
	}
}

func (tl *timeline) insert(iv Interval) {
	i := sort.Search(len(tl.busy), func(k int) bool { return tl.busy[k].Start >= iv.Start })
	tl.busy = append(tl.busy, Interval{})
	copy(tl.busy[i+1:], tl.busy[i:])
	tl.busy[i] = iv
	if iv.End > tl.frontier {
		tl.frontier = iv.End
	}
}
