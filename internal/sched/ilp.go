package sched

import (
	"fmt"
	"math"
)

// This file reproduces the paper's Appendix A: the Integer Linear Program
// that defines the scheduling problem exactly. We do not ship a MILP solver
// (the paper's own ILP never finished on real instances; our exact
// branch-and-bound plays that role) — instead the formulation is built as
// data, and CheckILP verifies a concrete schedule against every constraint
// (1)–(12). That gives a machine-checked proof that this repository's
// schedule semantics are the appendix's semantics, and the test suite runs
// every heuristic's output through it.

// ILPVariables are the decision variables of the appendix for a concrete
// schedule: start/end times per task plus the induced binaries.
type ILPVariables struct {
	StartR, EndR []float64 // compression tasks, indexed like Problem.Jobs
	StartB, EndB []float64 // I/O tasks
	// FirstR[i][j] == 1 iff compression task i precedes j (i < j only).
	FirstR, FirstB [][]int
	// DeltaR[i][h] == 1 iff compression task i executes between the
	// (h-1)-th and h-th unavailability interval on machine 1 (h in
	// [0, k]); DeltaB likewise for machine 2.
	DeltaR, DeltaB [][]int
	// Overall is T_n^overall.
	Overall float64
}

// ilpEps absorbs floating-point slack in the constraint checks.
const ilpEps = 1e-6

// BuildILPVariables derives the appendix's variable assignment induced by a
// schedule (every feasible schedule induces exactly one assignment).
func BuildILPVariables(p *Problem, s *Schedule) (*ILPVariables, error) {
	m := len(p.Jobs)
	if len(s.Placements) != m {
		return nil, fmt.Errorf("sched: %d placements for %d jobs", len(s.Placements), m)
	}
	v := &ILPVariables{
		StartR: make([]float64, m), EndR: make([]float64, m),
		StartB: make([]float64, m), EndB: make([]float64, m),
		Overall: s.Overall,
	}
	byID := make(map[int]Placement, m)
	for _, pl := range s.Placements {
		byID[pl.JobID] = pl
	}
	for i, j := range p.Jobs {
		pl, ok := byID[j.ID]
		if !ok {
			return nil, fmt.Errorf("sched: job %d missing from schedule", j.ID)
		}
		v.StartR[i], v.EndR[i] = pl.CompStart, pl.CompEnd
		v.StartB[i], v.EndB[i] = pl.IOStart, pl.IOEnd
	}

	mkFirst := func(start []float64) [][]int {
		f := make([][]int, m)
		for i := range f {
			f[i] = make([]int, m)
			for j := range f[i] {
				if i < j && start[i] <= start[j] {
					f[i][j] = 1
				}
			}
		}
		return f
	}
	v.FirstR = mkFirst(v.StartR)
	v.FirstB = mkFirst(v.StartB)

	mkDelta := func(start, end []float64, holes []Interval) ([][]int, error) {
		d := make([][]int, m)
		for i := range d {
			d[i] = make([]int, len(holes)+1)
			h, err := windowOf(start[i], end[i], holes)
			if err != nil {
				return nil, fmt.Errorf("sched: task %d: %w", i, err)
			}
			d[i][h] = 1
		}
		return d, nil
	}
	var err error
	if v.DeltaR, err = mkDelta(v.StartR, v.EndR, p.CompHoles); err != nil {
		return nil, err
	}
	if v.DeltaB, err = mkDelta(v.StartB, v.EndB, p.IOHoles); err != nil {
		return nil, err
	}
	return v, nil
}

// windowOf returns h such that [start, end) lies between the (h-1)-th and
// h-th unavailability interval (appendix convention: b_0 = 0,
// a_{k+1} = +inf).
func windowOf(start, end float64, holes []Interval) (int, error) {
	for h := 0; h <= len(holes); h++ {
		lo := 0.0
		if h > 0 {
			lo = holes[h-1].End
		}
		hi := math.Inf(1)
		if h < len(holes) {
			hi = holes[h].Start
		}
		if start >= lo-ilpEps && end <= hi+ilpEps {
			return h, nil
		}
	}
	return 0, fmt.Errorf("task [%v, %v) fits no availability window", start, end)
}

// CheckILP verifies the variable assignment against every constraint of the
// appendix's ILP (Figure 12, equations (1)–(12)). A nil error means the
// schedule is feasible under the paper's own formal definition.
func CheckILP(p *Problem, v *ILPVariables) error {
	m := len(p.Jobs)

	// (1): T_overall >= t_end(B_i).
	for i := 0; i < m; i++ {
		if v.Overall < v.EndB[i]-ilpEps {
			return fmt.Errorf("ilp: eq(1) violated for job %d: overall %v < io end %v", i, v.Overall, v.EndB[i])
		}
	}
	// (2): t_end(R_i) <= t_start(B_i).
	for i := 0; i < m; i++ {
		if v.EndR[i] > v.StartB[i]+ilpEps {
			return fmt.Errorf("ilp: eq(2) violated for job %d", i)
		}
	}
	// (3), (4): durations.
	for i, j := range p.Jobs {
		if math.Abs(v.EndR[i]-v.StartR[i]-j.Comp) > ilpEps {
			return fmt.Errorf("ilp: eq(3) violated for job %d", i)
		}
		if math.Abs(v.EndB[i]-v.StartB[i]-j.IO) > ilpEps {
			return fmt.Errorf("ilp: eq(4) violated for job %d", i)
		}
	}
	// (5), (6): machine ordering via the first binaries (the big-Z form
	// reduces to: whichever of i, j is first must end before the other
	// starts — for tasks with positive duration).
	check56 := func(first [][]int, start, end []float64, kind string) error {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if end[i]-start[i] <= ilpEps || end[j]-start[j] <= ilpEps {
					continue // zero-duration tasks impose no exclusion
				}
				if first[i][j] == 1 {
					if v := end[i] - start[j]; v > ilpEps {
						return fmt.Errorf("ilp: eq(5) violated on %s tasks %d,%d", kind, i, j)
					}
				} else {
					if v := end[j] - start[i]; v > ilpEps {
						return fmt.Errorf("ilp: eq(6) violated on %s tasks %d,%d", kind, i, j)
					}
				}
			}
		}
		return nil
	}
	if err := check56(v.FirstR, v.StartR, v.EndR, "compression"); err != nil {
		return err
	}
	if err := check56(v.FirstB, v.StartB, v.EndB, "io"); err != nil {
		return err
	}
	// (7)-(10): window bounds — if delta_{i,h} = 1, the task starts at or
	// after the (h-1)-th interval's end and completes at or before the
	// h-th interval's start.
	checkWin := func(delta [][]int, start, end []float64, holes []Interval, kind string) error {
		for i := 0; i < m; i++ {
			for h, bit := range delta[i] {
				if bit == 0 {
					continue
				}
				lo := 0.0
				if h > 0 {
					lo = holes[h-1].End
				}
				hi := math.Inf(1)
				if h < len(holes) {
					hi = holes[h].Start
				}
				if start[i] < lo-ilpEps {
					return fmt.Errorf("ilp: eq(7/8) violated on %s task %d", kind, i)
				}
				if end[i] > hi+ilpEps {
					return fmt.Errorf("ilp: eq(9/10) violated on %s task %d", kind, i)
				}
			}
		}
		return nil
	}
	if err := checkWin(v.DeltaR, v.StartR, v.EndR, p.CompHoles, "compression"); err != nil {
		return err
	}
	if err := checkWin(v.DeltaB, v.StartB, v.EndB, p.IOHoles, "io"); err != nil {
		return err
	}
	// (11), (12): every task executes in exactly one window.
	for i := 0; i < m; i++ {
		if sumRow(v.DeltaR[i]) != 1 {
			return fmt.Errorf("ilp: eq(11) violated for job %d", i)
		}
		if sumRow(v.DeltaB[i]) != 1 {
			return fmt.Errorf("ilp: eq(12) violated for job %d", i)
		}
	}
	return nil
}

func sumRow(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// VerifyAgainstILP is the convenience form: derive the appendix's variables
// from a schedule and check every constraint.
func VerifyAgainstILP(p *Problem, s *Schedule) error {
	v, err := BuildILPVariables(p, s)
	if err != nil {
		return err
	}
	return CheckILP(p, v)
}
