package sched

import "testing"

func TestFingerprintIdentity(t *testing.T) {
	a, b := Figure1Problem(), Figure1Problem()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical problems must share a fingerprint")
	}

	// Normalized instances that differ only in hole presentation must agree.
	c := Figure1Problem()
	c.CompHoles = []Interval{{6, 7}, {3, 3.5}, {3.5, 4}} // unsorted + split
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("normalized equivalent hole lists must share a fingerprint")
	}

	// Every field must be load-bearing.
	for name, mutate := range map[string]func(*Problem){
		"horizon":  func(p *Problem) { p.Horizon++ },
		"compHole": func(p *Problem) { p.CompHoles[0].End += 0.25 },
		"ioHole":   func(p *Problem) { p.IOHoles = nil },
		"jobComp":  func(p *Problem) { p.Jobs[1].Comp += 1e-9 },
		"jobIO":    func(p *Problem) { p.Jobs[2].IO *= 2 },
		"jobID":    func(p *Problem) { p.Jobs[0].ID = 9 },
		"release":  func(p *Problem) { p.Jobs[3].Release = 0.5 },
		"dropJob":  func(p *Problem) { p.Jobs = p.Jobs[:3] },
	} {
		m := Figure1Problem()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Fatalf("%s: mutated problem kept the same fingerprint", name)
		}
	}
}
