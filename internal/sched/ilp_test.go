package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestILPAcceptsFigure1Schedules(t *testing.T) {
	p := Figure1Problem()
	for _, alg := range append(Algorithms(), Exact) {
		s, err := Solve(p, alg)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainstILP(p, s); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

// Every heuristic's schedule must satisfy the appendix's ILP on random
// instances — the formal statement that our schedule semantics equal the
// paper's.
func TestQuickAllHeuristicsSatisfyILP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultGenConfig()
		cfg.Jobs = 1 + rng.Intn(14)
		cfg.CompHoles = rng.Intn(4)
		cfg.IOHoles = rng.Intn(4)
		cfg.HoleFrac = rng.Float64() * 0.6
		p := RandomProblem(rng, cfg)
		for _, alg := range Algorithms() {
			s, err := Solve(p, alg)
			if err != nil {
				return false
			}
			if err := VerifyAgainstILP(p, s); err != nil {
				t.Logf("%s: %v", alg, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestILPCatchesViolations(t *testing.T) {
	p := Figure1Problem()
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	s, err := Solve(p, ExtJohnsonBF)
	if err != nil {
		t.Fatal(err)
	}

	// Eq (2): io before its compression ends.
	bad := cloneSchedule(s)
	bad.Placements[0].IOStart = bad.Placements[0].CompStart
	bad.Placements[0].IOEnd = bad.Placements[0].IOStart + p.Jobs[0].IO
	if err := VerifyAgainstILP(p, bad); err == nil {
		t.Fatal("eq(2) violation not caught")
	}

	// Eq (3): wrong duration.
	bad = cloneSchedule(s)
	bad.Placements[1].CompEnd += 0.5
	if err := VerifyAgainstILP(p, bad); err == nil {
		t.Fatal("eq(3) violation not caught")
	}

	// Eq (5/6): overlapping compression tasks.
	bad = cloneSchedule(s)
	bad.Placements[1].CompStart = bad.Placements[0].CompStart
	bad.Placements[1].CompEnd = bad.Placements[1].CompStart + p.Jobs[1].Comp
	bad.Placements[1].IOStart = bad.Placements[1].CompEnd + 8
	bad.Placements[1].IOEnd = bad.Placements[1].IOStart + p.Jobs[1].IO
	if err := VerifyAgainstILP(p, bad); err == nil {
		t.Fatal("machine-exclusion violation not caught")
	}

	// Window constraint: task straddling a hole has no valid delta.
	bad = cloneSchedule(s)
	bad.Placements[0].CompStart = 3.5 // inside the [3,4) hole
	bad.Placements[0].CompEnd = 3.5 + p.Jobs[0].Comp
	if err := VerifyAgainstILP(p, bad); err == nil {
		t.Fatal("window violation not caught")
	}

	// Eq (1): understated overall.
	bad = cloneSchedule(s)
	bad.Overall = 1
	if err := VerifyAgainstILP(p, bad); err == nil {
		t.Fatal("eq(1) violation not caught")
	}
}

func cloneSchedule(s *Schedule) *Schedule {
	c := *s
	c.Placements = append([]Placement(nil), s.Placements...)
	return &c
}

func TestWindowOf(t *testing.T) {
	holes := []Interval{{2, 3}, {5, 7}}
	cases := []struct {
		start, end float64
		want       int
		ok         bool
	}{
		{0, 2, 0, true},
		{3, 5, 1, true},
		{7, 100, 2, true},
		{1, 4, 0, false}, // straddles the first hole
		{2.5, 2.6, 0, false},
	}
	for _, c := range cases {
		got, err := windowOf(c.start, c.end, holes)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("[%v,%v): got %d, %v", c.start, c.end, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("[%v,%v): accepted as window %d", c.start, c.end, got)
		}
	}
}
