package sched

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// parityCorpus generates the randomized instances the serial/parallel
// equivalence is pinned on: sizes small enough that every search completes
// (determinism is only promised for Optimal results), with holes, releases,
// and degenerate shapes mixed in.
func parityCorpus(t *testing.T, trials int) []*Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	var out []*Problem
	for trial := 0; trial < trials; trial++ {
		cfg := GenConfig{
			Jobs:       2 + rng.Intn(6), // 2..7 jobs: searches complete fast
			CompHoles:  rng.Intn(4),
			IOHoles:    rng.Intn(4),
			Horizon:    rng.Float64() * 1.5,
			HoleFrac:   rng.Float64() * 0.6,
			MeanComp:   0.02 + rng.Float64()*0.1,
			MeanIO:     0.02 + rng.Float64()*0.1,
			JitterFrac: rng.Float64(),
		}
		p := RandomProblem(rng, cfg)
		if trial%3 == 0 {
			// Releases exercise the moved-write constraint of §3.4.
			for i := range p.Jobs {
				if rng.Intn(2) == 0 {
					p.Jobs[i].Release = rng.Float64() * 0.3
				}
			}
		}
		if trial%7 == 0 {
			// Exact ties are the case canonical-order merging must
			// adjudicate: make several jobs byte-identical.
			for i := 1; i < len(p.Jobs); i++ {
				p.Jobs[i].Comp = p.Jobs[0].Comp
				p.Jobs[i].IO = p.Jobs[0].IO
			}
		}
		out = append(out, p)
	}
	return out
}

// TestExactParallelMatchesSerial is the parity pin: across the randomized
// corpus and several worker counts, the parallel search must return a
// schedule byte-identical (JSON bytes) to the serial search's, with the
// same Optimal verdict. Run under -race via `make test`.
func TestExactParallelMatchesSerial(t *testing.T) {
	corpus := parityCorpus(t, 60)
	for ti, p := range corpus {
		serial, err := SolveExactCtx(context.Background(), p, DefaultExactNodeLimit)
		if err != nil {
			t.Fatalf("instance %d: serial: %v", ti, err)
		}
		if !serial.Optimal {
			t.Fatalf("instance %d: serial search capped; corpus must complete", ti)
		}
		wantB, err := json.Marshal(serial.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := SolveExactParallelCtx(context.Background(), p, DefaultExactNodeLimit, workers)
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", ti, workers, err)
			}
			if !par.Optimal {
				t.Fatalf("instance %d workers=%d: parallel search capped", ti, workers)
			}
			gotB, err := json.Marshal(par.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotB) != string(wantB) {
				t.Fatalf("instance %d workers=%d: parallel schedule differs from serial\nserial:   %s\nparallel: %s",
					ti, workers, wantB, gotB)
			}
			if err := Validate(p, par.Schedule); err != nil {
				t.Fatalf("instance %d workers=%d: %v", ti, workers, err)
			}
		}
	}
}

// TestExactParallelMatchesBruteForce anchors the parallel search to ground
// truth, not just to the serial implementation.
func TestExactParallelMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		cfg := GenConfig{
			Jobs:       4, // brute force stays cheap: 4!·4! pairs
			CompHoles:  rng.Intn(3),
			IOHoles:    rng.Intn(3),
			Horizon:    rng.Float64() * 0.5,
			HoleFrac:   rng.Float64() * 0.6,
			MeanComp:   0.05 + rng.Float64()*0.1,
			MeanIO:     0.05 + rng.Float64()*0.1,
			JitterFrac: rng.Float64(),
		}
		p := RandomProblem(rng, cfg)
		want := bruteForce(p)
		res, err := SolveExactParallelCtx(context.Background(), p, DefaultExactNodeLimit, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: capped", trial)
		}
		if diff := res.Overall - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: parallel exact %v != brute force %v", trial, res.Overall, want)
		}
	}
}

// TestExactParallelSmallFallsBackToSerial: tiny instances and width-1 calls
// must take the serial path (Workers=1 in the diagnostics).
func TestExactParallelSmallFallsBackToSerial(t *testing.T) {
	p := &Problem{Horizon: 1, Jobs: []Job{{ID: 0, Comp: 0.1, IO: 0.1}, {ID: 1, Comp: 0.2, IO: 0.1}}}
	res, err := SolveExactParallelCtx(context.Background(), p, DefaultExactNodeLimit, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Fatalf("2-job instance used %d workers, want serial fallback", res.Workers)
	}
	res, err = SolveExactParallelCtx(context.Background(), Figure1Problem(), DefaultExactNodeLimit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Fatalf("workers=1 call reported %d workers", res.Workers)
	}
}

// TestExactParallelCancellation: a deadline must stop all workers and
// surface the context error, promptly.
func TestExactParallelCancellation(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = MaxExactJobs
	p := RandomProblem(rand.New(rand.NewSource(5)), cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := SolveExactParallelCtx(ctx, p, 1<<40, 4)
	if err == nil {
		// Legitimate on a machine fast enough to finish inside the deadline.
		if !res.Optimal {
			t.Fatalf("no error but non-optimal result (nodes=%d)", res.Nodes)
		}
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestExactParallelNodeLimit: an absurdly small budget must return a capped
// best-effort result, never an error.
func TestExactParallelNodeLimit(t *testing.T) {
	// Find an instance whose warm start does not already meet the static
	// lower bound (those are proven optimal with zero nodes, budget or not).
	// Zero horizon plus io holes makes the ioLoadLB bound unattainable, so
	// real search is required; probe cheaply to confirm.
	rng := rand.New(rand.NewSource(9))
	var p *Problem
	for attempt := 0; attempt < 100; attempt++ {
		cfg := GenConfig{
			Jobs: 9, IOHoles: 3, CompHoles: 2, Horizon: 0,
			HoleFrac: 0.5, MeanComp: 0.05, MeanIO: 0.08, JitterFrac: 0.8,
		}
		cand := RandomProblem(rng, cfg)
		probe, err := SolveExactCtx(context.Background(), cand, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if probe.Nodes > 0 {
			p = cand
			break
		}
	}
	if p == nil {
		t.Fatal("no probe instance required search; generator config too easy")
	}
	res, err := SolveExactParallelCtx(context.Background(), p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("1-node budget reported an optimal search")
	}
	if res.Schedule == nil {
		t.Fatal("capped search returned no best-effort schedule")
	}
	if err := Validate(p, res.Schedule); err != nil {
		t.Fatal(err)
	}
}
