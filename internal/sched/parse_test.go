package sched

import (
	"errors"
	"strings"
	"testing"
)

func TestParseAlgorithm(t *testing.T) {
	for _, a := range append(Algorithms(), Exact) {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %q, %v", a, got, err)
		}
		// Matching is case-insensitive: CLI users should not have to
		// remember the exact capitalization of "ExtJohnson+BF".
		got, err = ParseAlgorithm(strings.ToLower(string(a)))
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(lower %q) = %q, %v", a, got, err)
		}
	}
	_, err := ParseAlgorithm("Johnson")
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("unknown name error = %v, want ErrUnknownAlgorithm", err)
	}
	for _, a := range append(Algorithms(), Exact) {
		if !strings.Contains(err.Error(), string(a)) {
			t.Fatalf("error %q does not list %q", err, a)
		}
	}
}
