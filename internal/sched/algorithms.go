package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Algorithm names one of the scheduling strategies of §3.3 (plus the exact
// reference solver standing in for the Appendix-A ILP).
type Algorithm string

// The six heuristics of the paper plus the exact reference.
const (
	ExtJohnson     Algorithm = "ExtJohnson"
	ExtJohnsonBF   Algorithm = "ExtJohnson+BF"
	GenList        Algorithm = "GenerationListSchedule"
	GenListBF      Algorithm = "GenerationListSchedule+BF"
	OneListGreedy  Algorithm = "OneListGreedy"
	TwoListsGreedy Algorithm = "TwoListsGreedy"
	Exact          Algorithm = "Exact"
)

// Algorithms returns the heuristics in the paper's presentation order
// (Table 1 rows). Exact is excluded; request it explicitly.
func Algorithms() []Algorithm {
	return []Algorithm{ExtJohnson, ExtJohnsonBF, GenList, GenListBF, OneListGreedy, TwoListsGreedy}
}

// ParseAlgorithm resolves a user-supplied name (case-insensitive) to an
// Algorithm, accepting the six Table-1 heuristics and Exact. The error
// lists every valid name, so CLIs can surface it verbatim.
func ParseAlgorithm(name string) (Algorithm, error) {
	valid := append(Algorithms(), Exact)
	for _, a := range valid {
		if strings.EqualFold(string(a), name) {
			return a, nil
		}
	}
	names := make([]string, len(valid))
	for i, a := range valid {
		names[i] = string(a)
	}
	return "", fmt.Errorf("%w: %q (valid: %s)", ErrUnknownAlgorithm, name, strings.Join(names, ", "))
}

// Solve schedules the problem with the chosen algorithm. The problem is
// normalized in place (holes sorted and merged).
func Solve(p *Problem, alg Algorithm) (*Schedule, error) {
	return SolveCtx(context.Background(), p, alg)
}

// SolveInfo carries solver diagnostics alongside a Schedule, so a caller
// (or an API client) can distinguish a proven optimum from a best-effort
// answer. For the heuristics it is the zero value: nothing is proven.
type SolveInfo struct {
	// Optimal is true only for an Exact solve whose search ran to
	// completion; a node-budget-capped search returns its best schedule
	// with Optimal=false.
	Optimal bool `json:"optimal"`
	// Nodes is the number of branch-and-bound nodes explored (Exact only).
	Nodes int64 `json:"nodes,omitempty"`
	// Workers is the parallel search width used (Exact only; 1 = serial).
	Workers int `json:"workers,omitempty"`
}

// SolveCtx is Solve with cooperative cancellation: it fails fast with the
// context's error when ctx is already done, and the Exact branch-and-bound
// checks the context as it searches, so a caller-imposed deadline actually
// stops the solver instead of abandoning a running goroutine (the planning
// daemon relies on this for its 504 path). The heuristics run in microseconds
// and are not interrupted mid-flight. A nil ctx behaves like
// context.Background().
func SolveCtx(ctx context.Context, p *Problem, alg Algorithm) (*Schedule, error) {
	s, _, err := SolveInfoCtx(ctx, p, alg)
	return s, err
}

// SolveInfoCtx is SolveCtx plus solver diagnostics. The Exact branch runs
// the parallel branch-and-bound at DefaultExactWorkers width (byte-identical
// to the serial search; see SolveExactParallelCtx).
func SolveInfoCtx(ctx context.Context, p *Problem, alg Algorithm) (*Schedule, SolveInfo, error) {
	var info SolveInfo
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	if err := p.Normalize(); err != nil {
		return nil, info, err
	}
	var s *Schedule
	switch alg {
	case ExtJohnson:
		s = listSchedule(p, johnsonOrder(p.Jobs), false)
	case ExtJohnsonBF:
		s = listSchedule(p, johnsonOrder(p.Jobs), true)
	case GenList:
		s = listSchedule(p, generationOrder(p.Jobs), false)
	case GenListBF:
		s = listSchedule(p, generationOrder(p.Jobs), true)
	case OneListGreedy:
		s = oneListGreedy(p)
	case TwoListsGreedy:
		s = twoListsGreedy(p)
	case Exact:
		res, err := solveExact(ctx, p)
		if err != nil {
			return nil, info, err
		}
		s = res.Schedule
		info = SolveInfo{Optimal: res.Optimal, Nodes: res.Nodes, Workers: res.Workers}
	default:
		return nil, info, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, alg)
	}
	s.Algorithm = alg
	return s, info, nil
}

// johnsonOrder partitions jobs into M1 (Comp <= IO, by non-decreasing Comp)
// followed by M2 (Comp > IO, by non-increasing IO) — Johnson's rule, which
// is optimal without unavailability intervals (§3.3.1).
func johnsonOrder(jobs []Job) []int {
	var m1, m2 []int
	for i, j := range jobs {
		if j.Comp <= j.IO {
			m1 = append(m1, i)
		} else {
			m2 = append(m2, i)
		}
	}
	sort.SliceStable(m1, func(a, b int) bool { return jobs[m1[a]].Comp < jobs[m1[b]].Comp })
	sort.SliceStable(m2, func(a, b int) bool { return jobs[m2[a]].IO > jobs[m2[b]].IO })
	return append(m1, m2...)
}

// generationOrder keeps the order in which fine-grained compression created
// the tasks (§3.3.2).
func generationOrder(jobs []Job) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].ID < jobs[order[b]].ID })
	return order
}

// listSchedule considers jobs in the given order; each compression task is
// placed on the main thread and its I/O task on the background thread.
// Without backfilling, each task starts after all previously placed tasks on
// its machine; with backfilling, it may slot into any idle gap (never
// delaying an already placed task, which placement-as-obstacle guarantees).
func listSchedule(p *Problem, order []int, backfill bool) *Schedule {
	compTL := newTimeline(p.CompHoles)
	ioTL := newTimeline(p.IOHoles)
	placements := make([]Placement, len(p.Jobs))
	for _, idx := range order {
		j := p.Jobs[idx]
		var c, w Interval
		if backfill {
			c = compTL.placeEarliest(0, j.Comp)
			w = ioTL.placeEarliest(math.Max(c.End, j.Release), j.IO)
		} else {
			c = compTL.placeAfterFrontier(0, j.Comp)
			w = ioTL.placeAfterFrontier(math.Max(c.End, j.Release), j.IO)
		}
		placements[idx] = Placement{
			JobID:     j.ID,
			CompStart: c.Start, CompEnd: c.End,
			IOStart: w.Start, IOEnd: w.End,
		}
	}
	return finishSchedule(p, placements)
}

// simulateOrders schedules compression tasks in compOrder and I/O tasks in
// ioOrder, each as soon as possible in sequence (list semantics), honouring
// the R_j -> B_j dependency. It is the evaluation primitive of the greedy
// algorithms and the exact solver.
func simulateOrders(p *Problem, compOrder, ioOrder []int) *Schedule {
	compTL := newTimeline(p.CompHoles)
	placements := make([]Placement, len(p.Jobs))
	for _, idx := range compOrder {
		j := p.Jobs[idx]
		c := compTL.placeAfterFrontier(0, j.Comp)
		placements[idx].JobID = j.ID
		placements[idx].CompStart, placements[idx].CompEnd = c.Start, c.End
	}
	ioTL := newTimeline(p.IOHoles)
	for _, idx := range ioOrder {
		j := p.Jobs[idx]
		w := ioTL.placeAfterFrontier(math.Max(placements[idx].CompEnd, j.Release), j.IO)
		placements[idx].IOStart, placements[idx].IOEnd = w.Start, w.End
	}
	return finishSchedule(p, placements)
}

func finishSchedule(p *Problem, placements []Placement) *Schedule {
	makespan := 0.0
	for _, pl := range placements {
		if pl.IOEnd > makespan {
			makespan = pl.IOEnd
		}
	}
	return &Schedule{
		Placements: placements,
		Makespan:   makespan,
		Overall:    math.Max(p.Horizon, makespan),
	}
}

// oneListGreedy builds a single order shared by compression and I/O tasks by
// inserting each new job at every possible position of the partial list and
// keeping the best (§3.3.3). Insertion may delay previously scheduled tasks,
// which is what makes it more aggressive than backfilling.
func oneListGreedy(p *Problem) *Schedule {
	base := generationOrder(p.Jobs)
	var list []int
	for _, next := range base {
		bestList := insertBest(p, list, next, func(cand []int) *Schedule {
			return simulateOrders(p, cand, cand)
		})
		list = bestList
	}
	if list == nil {
		list = []int{}
	}
	return simulateOrders(p, list, list)
}

// twoListsGreedy maintains independent orders for compression and I/O tasks;
// inserting job r+1 tries all (r+1)^2 position pairs (§3.3.3).
func twoListsGreedy(p *Problem) *Schedule {
	base := generationOrder(p.Jobs)
	var compList, ioList []int
	for _, next := range base {
		bestOverall := math.Inf(1)
		var bestComp, bestIO []int
		for ci := 0; ci <= len(compList); ci++ {
			cCand := insertAt(compList, ci, next)
			for wi := 0; wi <= len(ioList); wi++ {
				wCand := insertAt(ioList, wi, next)
				s := simulateOrders(p, cCand, wCand)
				if s.Overall < bestOverall-timeEps ||
					(math.Abs(s.Overall-bestOverall) <= timeEps && s.Makespan < bestOverall) {
					bestOverall = s.Overall
					bestComp, bestIO = cCand, wCand
				}
			}
		}
		compList, ioList = bestComp, bestIO
	}
	if compList == nil {
		compList, ioList = []int{}, []int{}
	}
	return simulateOrders(p, compList, ioList)
}

// insertBest tries the new element at each position and returns the list
// whose schedule (per eval) has the smallest Overall, breaking ties toward
// the smallest Makespan and then the earliest position.
func insertBest(p *Problem, list []int, next int, eval func([]int) *Schedule) []int {
	bestOverall, bestMakespan := math.Inf(1), math.Inf(1)
	var best []int
	for i := 0; i <= len(list); i++ {
		cand := insertAt(list, i, next)
		s := eval(cand)
		if s.Overall < bestOverall-timeEps ||
			(math.Abs(s.Overall-bestOverall) <= timeEps && s.Makespan < bestMakespan-timeEps) {
			bestOverall, bestMakespan = s.Overall, s.Makespan
			best = cand
		}
	}
	return best
}

func insertAt(list []int, pos, v int) []int {
	out := make([]int, 0, len(list)+1)
	out = append(out, list[:pos]...)
	out = append(out, v)
	out = append(out, list[pos:]...)
	return out
}
