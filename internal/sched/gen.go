package sched

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig parameterizes RandomProblem.
type GenConfig struct {
	Jobs       int     // number of compression+I/O job pairs
	CompHoles  int     // computation intervals on the main thread
	IOHoles    int     // core-task intervals on the background thread
	Horizon    float64 // iteration length
	HoleFrac   float64 // fraction of the horizon covered by holes per machine (0..0.8)
	MeanComp   float64 // mean compression task duration
	MeanIO     float64 // mean I/O task duration
	JitterFrac float64 // +/- fraction of task-duration jitter
}

// DefaultGenConfig mirrors the paper's Table 1 setting: 32 blocks per rank,
// a handful of compute intervals, compression slightly cheaper than I/O.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Jobs:       32,
		CompHoles:  4,
		IOHoles:    3,
		Horizon:    5.0,
		HoleFrac:   0.35,
		MeanComp:   0.04,
		MeanIO:     0.06,
		JitterFrac: 0.5,
	}
}

// RandomProblem generates a reproducible instance: holes are placed
// non-overlapping across the horizon; job durations are jittered around the
// configured means.
func RandomProblem(rng *rand.Rand, cfg GenConfig) *Problem {
	p := &Problem{Horizon: cfg.Horizon}
	p.CompHoles = randomHoles(rng, cfg.CompHoles, cfg.Horizon, cfg.HoleFrac)
	p.IOHoles = randomHoles(rng, cfg.IOHoles, cfg.Horizon, cfg.HoleFrac)
	for i := 0; i < cfg.Jobs; i++ {
		p.Jobs = append(p.Jobs, Job{
			ID:   i,
			Comp: jitter(rng, cfg.MeanComp, cfg.JitterFrac),
			IO:   jitter(rng, cfg.MeanIO, cfg.JitterFrac),
		})
	}
	return p
}

func jitter(rng *rand.Rand, mean, frac float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := mean * (1 + frac*(2*rng.Float64()-1))
	if v < mean*0.01 {
		v = mean * 0.01
	}
	return v
}

func randomHoles(rng *rand.Rand, n int, horizon, frac float64) []Interval {
	if n <= 0 || frac <= 0 {
		return nil
	}
	if frac > 0.8 {
		frac = 0.8
	}
	total := horizon * frac
	// Split the hole budget into n parts, then distribute starts over the
	// horizon without overlap.
	lens := make([]float64, n)
	rem := total
	for i := 0; i < n-1; i++ {
		l := rem / float64(n-i) * (0.5 + rng.Float64())
		if l > rem {
			l = rem
		}
		lens[i] = l
		rem -= l
	}
	lens[n-1] = rem
	free := horizon - total
	gaps := make([]float64, n+1)
	grem := free
	for i := 0; i < n; i++ {
		g := grem / float64(n+1-i) * (0.4 + 1.2*rng.Float64())
		if g > grem {
			g = grem
		}
		gaps[i] = g
		grem -= g
	}
	gaps[n] = grem
	var out []Interval
	t := 0.0
	for i := 0; i < n; i++ {
		t += gaps[i]
		out = append(out, Interval{t, t + lens[i]})
		t += lens[i]
	}
	return out
}

// Figure1Problem returns the worked example of §3.1/Figure 1: two compute
// holes at [3,4) and [6,7), one background hole at [4,5), horizon 12, and
// four jobs with c = (1,2,2,3) and c' = (2,1,2,2).
func Figure1Problem() *Problem {
	return &Problem{
		Horizon:   12,
		CompHoles: []Interval{{3, 4}, {6, 7}},
		IOHoles:   []Interval{{4, 5}},
		Jobs: []Job{
			{ID: 0, Comp: 1, IO: 2},
			{ID: 1, Comp: 2, IO: 1},
			{ID: 2, Comp: 2, IO: 2},
			{ID: 3, Comp: 3, IO: 2},
		},
	}
}

// Gantt renders an ASCII two-row Gantt chart of the schedule at the given
// characters-per-time-unit resolution. Compute holes are '#', I/O holes are
// '=', tasks are labelled by job index (mod 10), idle time is '.'.
func Gantt(p *Problem, s *Schedule, scale float64) string {
	end := s.Makespan
	if p.Horizon > end {
		end = p.Horizon
	}
	width := int(end*scale) + 1
	main := makeRow(width, '.')
	bg := makeRow(width, '.')
	paint := func(row []byte, iv Interval, c byte) {
		a, b := int(iv.Start*scale), int(iv.End*scale)
		for x := a; x < b && x < len(row); x++ {
			row[x] = c
		}
	}
	for _, h := range p.CompHoles {
		paint(main, h, '#')
	}
	for _, h := range p.IOHoles {
		paint(bg, h, '=')
	}
	for i, pl := range s.Placements {
		label := byte('0' + i%10)
		paint(main, Interval{pl.CompStart, pl.CompEnd}, label)
		paint(bg, Interval{pl.IOStart, pl.IOEnd}, label)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "main: %s\n", main)
	fmt.Fprintf(&b, "bg:   %s\n", bg)
	fmt.Fprintf(&b, "overall %.3f (horizon %.3f, makespan %.3f)", s.Overall, p.Horizon, s.Makespan)
	return b.String()
}

func makeRow(n int, c byte) []byte {
	row := make([]byte, n)
	for i := range row {
		row[i] = c
	}
	return row
}
