package sched

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestSolveBatchMatchesItemwise: batching is a pure amortization — results
// must be byte-identical and index-aligned with one-at-a-time SolveCtx calls.
func TestSolveBatchMatchesItemwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, alg := range append(Algorithms(), Exact) {
		var problems []*Problem
		for i := 0; i < 8; i++ {
			cfg := DefaultGenConfig()
			cfg.Jobs = 2 + rng.Intn(5)
			problems = append(problems, RandomProblem(rng, cfg))
		}
		// Duplicate a couple of instances to exercise the dedup path.
		problems = append(problems, problems[0], problems[3])

		results := SolveBatchCtx(context.Background(), problems, alg)
		if len(results) != len(problems) {
			t.Fatalf("%s: %d results for %d problems", alg, len(results), len(problems))
		}
		for i, p := range problems {
			want, err := SolveCtx(context.Background(), p, alg)
			if err != nil {
				t.Fatalf("%s item %d: itemwise: %v", alg, i, err)
			}
			if results[i].Err != nil {
				t.Fatalf("%s item %d: batch err: %v", alg, i, results[i].Err)
			}
			wb, _ := json.Marshal(want)
			gb, _ := json.Marshal(results[i].Schedule)
			if string(wb) != string(gb) {
				t.Fatalf("%s item %d: batch differs from itemwise\nitemwise: %s\nbatch:    %s", alg, i, wb, gb)
			}
		}
		if !results[len(results)-2].Deduped || !results[len(results)-1].Deduped {
			t.Fatalf("%s: repeated problems not marked Deduped", alg)
		}
		if results[0].Deduped {
			t.Fatalf("%s: first occurrence marked Deduped", alg)
		}
	}
}

// TestSolveBatchDedupedCopiesAreIndependent: mutating a deduped item's
// schedule must not corrupt the original's.
func TestSolveBatchDedupedCopiesAreIndependent(t *testing.T) {
	p := Figure1Problem()
	results := SolveBatchCtx(context.Background(), []*Problem{p, p}, TwoListsGreedy)
	if results[1].Schedule == results[0].Schedule {
		t.Fatal("deduped item shares the original *Schedule")
	}
	orig := results[0].Schedule.Placements[0]
	results[1].Schedule.Placements[0].IOEnd = math.Inf(1)
	if results[0].Schedule.Placements[0] != orig {
		t.Fatal("mutating the deduped copy changed the original placements")
	}
}

// TestSolveBatchIsolatesErrors: one bad item fails alone; its neighbours and
// its byte-identical duplicates get coherent outcomes.
func TestSolveBatchIsolatesErrors(t *testing.T) {
	good := Figure1Problem()
	bad := &Problem{Horizon: 1, Jobs: []Job{{ID: 0, Comp: -1, IO: 1}}}
	results := SolveBatchCtx(context.Background(), []*Problem{good, bad, nil, good}, ExtJohnson)
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("good items failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid item did not fail")
	}
	if !errors.Is(results[2].Err, errNilProblem) {
		t.Fatalf("nil item error = %v", results[2].Err)
	}
	if !results[3].Deduped {
		t.Fatal("repeated good item not deduped")
	}
}

// TestSolveBatchCancellation: a dead context fails every remaining item with
// the context error rather than panicking or blocking.
func TestSolveBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := SolveBatchCtx(ctx, []*Problem{Figure1Problem(), Figure1Problem()}, OneListGreedy)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSolveBatchExactInfo: the Exact diagnostics must flow through the batch
// path.
func TestSolveBatchExactInfo(t *testing.T) {
	p := Figure1Problem()
	results := SolveBatchCtx(context.Background(), []*Problem{p}, Exact)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if !results[0].Info.Optimal {
		t.Fatal("Figure-1 exact solve not reported optimal")
	}
	if results[0].Info.Workers < 1 {
		t.Fatalf("workers = %d", results[0].Info.Workers)
	}
}
