package sched

// Parallel branch-and-bound: the canonical comp-order search tree is split
// at depth two into m·(m-1) subtree tasks, seeded in canonical (lexicographic)
// order into a bounded queue that idle workers steal from. Workers share one
// atomic incumbent bound, so an improvement found anywhere immediately
// tightens pruning everywhere, and cooperative cancellation is preserved:
// every worker polls the caller's context and the first to see it fire stops
// the whole fleet.
//
// Determinism. The serial search is a fold over complete schedules in
// canonical order (comp order, then io order, both by ascending job index)
// with strict improvement "accept s iff s.Overall < incumbent" (plain <, no
// epsilon — see dfsIO), warm-started from the best heuristic W, stopping
// early once the incumbent is within timeEps of the static lower bound
// L = max(Horizon, ioLoadLB). Its result is therefore the canonically-first
// schedule with value <= L+timeEps if one exists, else the canonically-first
// schedule attaining the exact minimum M.
//
// Each parallel task runs that same fold over one contiguous segment of the
// canonical order, also warm-started from W. Both targets are reproduced
// exactly regardless of worker timing:
//
//   - Early-stop case: the first segment containing a schedule <= L+timeEps
//     yields exactly that schedule as its task result (its local incumbent is
//     > L+timeEps until then, so the schedule is accepted and the task stops).
//     The merge folds task results in canonical order and stops at the first
//     result <= L+timeEps, so later segments' results — which may legitimately
//     be smaller — cannot displace it. Early stop is deliberately *local*
//     (never propagated through shared.stop), so no task is aborted before
//     reaching its own first qualifying schedule.
//   - Exact-minimum case: the canonically-first attainer of M is never pruned
//     (every admissible bound on its path is <= M, the shared incumbent is
//     always >= M, and admits cuts only bounds strictly above it), and once a
//     task accepts it nothing else in the segment can (plain < rejects ties),
//     so that task's result is exactly the attainer. In the merge it beats
//     every earlier segment's result (all > M) and ties reject all later ones.
//
// The shared bound only ever *prunes* subtrees whose values all strictly
// exceed it, which can eliminate neither target. The guarantee holds for
// completed searches; a search capped by nodeLimit returns best-effort with
// Optimal=false and makes no cross-run promise (which subtrees were explored
// before the cap depends on scheduling).

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultExactWorkers is the parallel width SolveCtx's Exact branch uses:
// one worker per available CPU.
func DefaultExactWorkers() int { return runtime.GOMAXPROCS(0) }

// minParallelJobs is the smallest instance worth splitting: below this the
// whole search completes in microseconds and task setup dominates.
const minParallelJobs = 4

// exactShared is the cross-worker state of one parallel search.
type exactShared struct {
	bound     atomic.Uint64 // float64 bits of the global incumbent Overall
	nodes     atomic.Int64  // global node budget consumption
	stop      atomic.Bool   // set on cancellation or node-budget exhaustion
	capped    atomic.Bool
	cancelled atomic.Bool
}

func (sh *exactShared) boundVal() float64 {
	return math.Float64frombits(sh.bound.Load())
}

// offer lowers the shared bound to v if v improves it (monotone CAS min).
func (sh *exactShared) offer(v float64) {
	for {
		cur := sh.bound.Load()
		if math.Float64frombits(cur) <= v {
			return
		}
		if sh.bound.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// subtreeTask is one unit of parallel work: the comp-order prefix that roots
// the subtree, plus its position in the canonical enumeration (the merge
// key).
type subtreeTask struct {
	idx    int
	prefix [2]int
}

// SolveExactParallel is SolveExactParallelCtx without cancellation.
func SolveExactParallel(p *Problem, nodeLimit int64, workers int) (*ExactResult, error) {
	return SolveExactParallelCtx(context.Background(), p, nodeLimit, workers)
}

// SolveExactParallelCtx runs the exact branch-and-bound across up to
// `workers` goroutines and returns a schedule byte-identical to
// SolveExactCtx's whenever the search completes (Optimal=true) — see the
// package comment above for the determinism argument. workers <= 1, tiny
// instances, and single-CPU processes fall back to the serial search.
func SolveExactParallelCtx(ctx context.Context, p *Problem, nodeLimit int64, workers int) (*ExactResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	m := len(p.Jobs)
	if m > MaxExactJobs {
		return nil, fmt.Errorf("sched: exact solver limited to %d jobs, got %d", MaxExactJobs, m)
	}
	if workers <= 1 || m < minParallelJobs {
		return SolveExactCtx(ctx, p, nodeLimit)
	}

	warm, err := warmStart(p)
	if err != nil {
		return nil, err
	}
	sumComp, sumIOAll, ioLoadLB := staticBounds(p)
	if warm.Overall <= math.Max(p.Horizon, ioLoadLB)+timeEps {
		// The warm start already meets the static lower bound; the serial
		// search would explore zero nodes, and so do we.
		warm.Algorithm = Exact
		return &ExactResult{Schedule: warm, Optimal: true, Workers: workers}, nil
	}

	tasks := make([]subtreeTask, 0, m*(m-1))
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			tasks = append(tasks, subtreeTask{idx: len(tasks), prefix: [2]int{i, j}})
		}
	}
	queue := make(chan subtreeTask, len(tasks))
	for _, t := range tasks {
		queue <- t
	}
	close(queue)

	shared := &exactShared{}
	shared.bound.Store(math.Float64bits(warm.Overall))
	results := make([]*Schedule, len(tasks))

	nw := workers
	if nw > len(tasks) {
		nw = len(tasks)
	}
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for t := range queue {
				if shared.stop.Load() {
					break
				}
				e := &exactSearch{
					p:         p,
					ctx:       ctx,
					nodeLimit: nodeLimit,
					prefix:    t.prefix[:],
					shared:    shared,
					best:      warm,
					bestVal:   warm.Overall,
					sumComp:   sumComp,
					sumIOAll:  sumIOAll,
					ioLoadLB:  ioLoadLB,
				}
				e.compOrder = make([]int, 0, m)
				e.used = make([]bool, m)
				e.ioIv = make([]Interval, m)
				e.dfsComp(newTimeline(p.CompHoles), make([]float64, m))
				// Enforce the node budget at task boundaries as well as poll
				// boundaries, so budgets smaller than ctxPollEvery still cap
				// the search instead of silently overshooting task by task.
				if total := shared.nodes.Add(e.nodes - e.flushed); total >= nodeLimit {
					shared.capped.Store(true)
					shared.stop.Store(true)
				}
				if e.best != warm {
					results[t.idx] = e.best
				}
			}
		}()
	}
	wg.Wait()

	if shared.cancelled.Load() {
		return nil, ctx.Err()
	}

	// Deterministic merge: fold the per-subtree incumbents in canonical
	// order with the serial rules — strict < acceptance, stop at the first
	// result within timeEps of the static lower bound (mirroring the serial
	// search's early stop; see the package comment).
	best, bestVal := warm, warm.Overall
	stopAt := math.Max(p.Horizon, ioLoadLB) + timeEps
	for _, s := range results {
		if s != nil && s.Overall < bestVal {
			best, bestVal = s, s.Overall
			if bestVal <= stopAt {
				break
			}
		}
	}
	best.Algorithm = Exact
	return &ExactResult{
		Schedule: best,
		Optimal:  !shared.capped.Load(),
		Nodes:    shared.nodes.Load(),
		Workers:  nw,
	}, nil
}
