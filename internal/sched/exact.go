package sched

import (
	"context"
	"fmt"
	"math"
)

// MaxExactJobs bounds the instance size solveExact accepts. Beyond this the
// search space (m!·m! orders) is hopeless — the same reason the paper's ILP
// "was unable to find a solution for any of the experiments" at real scale.
const MaxExactJobs = 12

// DefaultExactNodeLimit caps the branch-and-bound search. When the limit is
// hit, the best schedule found so far is returned with Optimal=false.
const DefaultExactNodeLimit = 20_000_000

// ExactResult augments a Schedule with search diagnostics.
type ExactResult struct {
	*Schedule
	Optimal bool  // true if the search ran to completion
	Nodes   int64 // branch-and-bound nodes explored
	Workers int   // parallel search workers used (1 = serial)
}

// solveExact finds the optimal (comp order, io order) pair by
// branch-and-bound over both permutations, using ASAP compaction (every
// feasible schedule is dominated by the ASAP schedule of the orders it
// induces, so searching order pairs is exhaustive). It runs the parallel
// search at the process's default width; SolveExactParallelCtx degrades to
// the serial search on one core or tiny instances, and returns the same
// bytes either way.
func solveExact(ctx context.Context, p *Problem) (*ExactResult, error) {
	return SolveExactParallelCtx(ctx, p, DefaultExactNodeLimit, DefaultExactWorkers())
}

// SolveExact runs the serial exact solver with an explicit node budget.
func SolveExact(p *Problem, nodeLimit int64) (*ExactResult, error) {
	return SolveExactCtx(context.Background(), p, nodeLimit)
}

// SolveExactCtx is SolveExact with cooperative cancellation: the search
// polls ctx every few thousand branch-and-bound nodes and returns ctx's
// error when it fires, so a deadline bounds the worst-case m!·m! search in
// wall-clock terms, not just node count. A nil ctx never cancels.
func SolveExactCtx(ctx context.Context, p *Problem, nodeLimit int64) (*ExactResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	m := len(p.Jobs)
	if m > MaxExactJobs {
		return nil, fmt.Errorf("sched: exact solver limited to %d jobs, got %d", MaxExactJobs, m)
	}
	if m == 0 {
		s := finishSchedule(p, nil)
		s.Algorithm = Exact
		return &ExactResult{Schedule: s, Optimal: true, Workers: 1}, nil
	}

	best, err := warmStart(p)
	if err != nil {
		return nil, err
	}

	e := &exactSearch{
		p:         p,
		ctx:       ctx,
		nodeLimit: nodeLimit,
		best:      best,
		bestVal:   best.Overall,
	}
	e.compOrder = make([]int, 0, m)
	e.used = make([]bool, m)
	e.ioIv = make([]Interval, m)
	e.sumComp, e.sumIOAll, e.ioLoadLB = staticBounds(p)
	e.dfsComp(newTimeline(p.CompHoles), make([]float64, m))
	if e.cancelled {
		return nil, ctx.Err()
	}

	e.best.Algorithm = Exact
	return &ExactResult{Schedule: e.best, Optimal: !e.capped, Nodes: e.nodes, Workers: 1}, nil
}

// warmStart runs every heuristic and returns the best schedule, so branch-
// and-bound pruning bites from the first node. Both the serial and the
// parallel search start from this same incumbent — a precondition of their
// byte-identical results.
func warmStart(p *Problem) (*Schedule, error) {
	var best *Schedule
	for _, alg := range Algorithms() {
		s, err := Solve(p, alg)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Overall < best.Overall {
			best = s
		}
	}
	return best, nil
}

// staticBounds computes the instance-wide quantities every subtree search
// needs: total compression work, total io work, and the static machine-2
// load bound (every write is sequential on the background thread and none
// can start before the earliest possible compression completion).
func staticBounds(p *Problem) (sumComp, sumIOAll, ioLoadLB float64) {
	for _, j := range p.Jobs {
		sumComp += j.Comp
		sumIOAll += j.IO
	}
	earliest := math.Inf(1)
	tl := newTimeline(p.CompHoles)
	for _, j := range p.Jobs {
		if end := tl.fitsHoles(0, j.Comp) + j.Comp; end < earliest {
			earliest = end
		}
	}
	if !math.IsInf(earliest, 1) {
		ioLoadLB = earliest + sumIOAll
	}
	return sumComp, sumIOAll, ioLoadLB
}

type exactSearch struct {
	p         *Problem
	ctx       context.Context
	nodeLimit int64
	nodes     int64
	flushed   int64 // nodes already added to shared.nodes
	lastPoll  int64 // node count at the previous ctx poll
	capped    bool
	cancelled bool

	// prefix pins the first len(prefix) compression-order choices, so a
	// parallel worker explores exactly one subtree of the canonical search
	// tree. Empty for the serial search.
	prefix []int
	// shared is the cross-worker state of a parallel search (incumbent
	// bound, node budget, stop flags); nil for the serial search.
	shared *exactShared

	compOrder []int
	used      []bool
	sumComp   float64    // total comp duration of jobs not yet in compOrder
	sumIOAll  float64    // total io duration over all jobs
	ioLoadLB  float64    // static lower bound on the io makespan
	ioIv      []Interval // io placement per job index, for reconstruction
	best      *Schedule
	bestVal   float64
}

// ctxPollEvery is how many branch-and-bound nodes may elapse between context
// polls: rare enough to stay off the profile, frequent enough (< 1ms of
// search) that a deadline stops the solver promptly.
const ctxPollEvery = 8192

func (e *exactSearch) done() bool {
	if e.cancelled {
		return true
	}
	if e.shared != nil && e.shared.stop.Load() {
		return true
	}
	if e.nodes-e.lastPoll >= ctxPollEvery {
		e.lastPoll = e.nodes
		if e.ctx.Err() != nil {
			e.cancelled = true
			if e.shared != nil {
				e.shared.cancelled.Store(true)
				e.shared.stop.Store(true)
			}
			return true
		}
		if e.shared != nil {
			// Flush the local node count into the shared budget; overshoot
			// is bounded by workers × ctxPollEvery nodes.
			total := e.shared.nodes.Add(e.nodes - e.flushed)
			e.flushed = e.nodes
			if total >= e.nodeLimit {
				e.capped = true
				e.shared.capped.Store(true)
				e.shared.stop.Store(true)
				return true
			}
		}
	}
	if e.shared == nil && e.nodes >= e.nodeLimit {
		e.capped = true
		return true
	}
	// Nothing can beat the horizon or the machine-2 load bound: every
	// schedule has Overall >= max(Horizon, ioLoadLB).
	return e.bestVal <= math.Max(e.p.Horizon, e.ioLoadLB)+timeEps
}

// admits reports whether a branch with the given lower bound is worth
// descending into. Both rules are exact with respect to the strict-<
// acceptance in dfsIO: a subtree is cut only when nothing inside it could be
// accepted. The local rule mirrors acceptance (values >= bound >= bestVal
// can't improve); the shared rule prunes values strictly above the global
// incumbent, which can never contain the canonically-first attainer of the
// global minimum — the schedule both the serial and the parallel search
// return (see SolveExactParallelCtx's determinism argument).
func (e *exactSearch) admits(bound float64) bool {
	if bound >= e.bestVal {
		return false
	}
	if e.shared != nil && bound > e.shared.boundVal() {
		return false
	}
	return true
}

// accept installs a strictly better schedule as the local incumbent and, in
// a parallel search, offers its value to the shared bound so other workers
// prune against it. Values at or below the early-stop threshold L+timeEps
// are deliberately NOT offered: accepting one ends this task immediately
// (see done), and publishing it could shared-prune the canonically-first
// qualifying schedule in an earlier segment of another worker — the one the
// serial search would return. Withholding keeps the shared bound strictly
// above L+timeEps, so qualifier paths (bounds <= L+timeEps) never get cut.
func (e *exactSearch) accept(s *Schedule) {
	e.best = s
	e.bestVal = s.Overall
	if e.shared != nil && s.Overall > math.Max(e.p.Horizon, e.ioLoadLB)+timeEps {
		e.shared.offer(s.Overall)
	}
}

// dfsComp extends the compression order. compEnds[idx] records each job's
// compression end once placed.
func (e *exactSearch) dfsComp(tl *timeline, compEnds []float64) {
	if e.done() {
		return
	}
	m := len(e.p.Jobs)
	depth := len(e.compOrder)
	if depth == m {
		ioTL := newTimeline(e.p.IOHoles)
		e.dfsIO(ioTL, compEnds, make([]bool, m), 0, e.sumIOAll)
		return
	}
	lo, hi := 0, m
	if depth < len(e.prefix) {
		lo, hi = e.prefix[depth], e.prefix[depth]+1
	}
	for idx := lo; idx < hi; idx++ {
		if e.used[idx] {
			continue
		}
		e.nodes++
		j := e.p.Jobs[idx]
		save := tl.clone()
		c := tl.placeAfterFrontier(0, j.Comp)
		// Lower bound: remaining comps run back-to-back from the frontier
		// (ignoring holes), then the shortest remaining io follows; placed
		// jobs each force compEnd + io.
		remComp := e.sumComp - j.Comp
		lb := tl.frontier + remComp
		minIO := math.Inf(1)
		for k := 0; k < m; k++ {
			if k == idx || e.used[k] {
				continue
			}
			if e.p.Jobs[k].IO < minIO {
				minIO = e.p.Jobs[k].IO
			}
		}
		if math.IsInf(minIO, 1) {
			minIO = 0
		}
		lb += minIO
		if c.End+j.IO > lb {
			lb = c.End + j.IO
		}
		if e.ioLoadLB > lb {
			lb = e.ioLoadLB
		}
		if e.admits(math.Max(e.p.Horizon, lb)) {
			e.used[idx] = true
			e.compOrder = append(e.compOrder, idx)
			e.sumComp -= j.Comp
			compEnds[idx] = c.End

			e.dfsComp(tl, compEnds)

			e.sumComp += j.Comp
			e.compOrder = e.compOrder[:len(e.compOrder)-1]
			e.used[idx] = false
		}
		*tl = *save
		if e.done() {
			return
		}
	}
}

// dfsIO extends the io order given fixed compression end times.
func (e *exactSearch) dfsIO(tl *timeline, compEnds []float64, placed []bool, nPlaced int, remIO float64) {
	if e.done() {
		return
	}
	m := len(e.p.Jobs)
	if nPlaced == m {
		s := e.buildSchedule(compEnds, tl)
		// Strict < (no epsilon): the incumbent is replaced only by a real
		// float improvement, so the search result is the canonically-first
		// schedule attaining the exact minimum — the invariant the parallel
		// merge depends on. Epsilon-slack here would let two near-tied
		// schedules (different orders, same ideal value, ~1e-16 apart from
		// float reassociation) resolve differently depending on the fold's
		// starting incumbent.
		if s.Overall < e.bestVal {
			e.accept(s)
		}
		return
	}
	for idx := 0; idx < m; idx++ {
		if placed[idx] {
			continue
		}
		e.nodes++
		j := e.p.Jobs[idx]
		save := tl.clone()
		w := tl.placeAfterFrontier(math.Max(compEnds[idx], j.Release), j.IO)
		// Lower bound: remaining io back-to-back from the new frontier.
		lb := tl.frontier + (remIO - j.IO)
		if w.End > lb {
			lb = w.End
		}
		if e.admits(math.Max(e.p.Horizon, lb)) {
			placed[idx] = true
			e.ioIv[idx] = w
			e.dfsIO(tl, compEnds, placed, nPlaced+1, remIO-j.IO)
			placed[idx] = false
		}
		*tl = *save
		if e.done() {
			return
		}
	}
}

func (e *exactSearch) buildSchedule(compEnds []float64, tl *timeline) *Schedule {
	m := len(e.p.Jobs)
	placements := make([]Placement, m)
	for idx := 0; idx < m; idx++ {
		j := e.p.Jobs[idx]
		placements[idx] = Placement{
			JobID:     j.ID,
			CompStart: compEnds[idx] - j.Comp,
			CompEnd:   compEnds[idx],
			IOStart:   e.ioIv[idx].Start,
			IOEnd:     e.ioIv[idx].End,
		}
	}
	return finishSchedule(e.p, placements)
}
