package sched

import (
	"context"
	"fmt"
	"math"
)

// MaxExactJobs bounds the instance size solveExact accepts. Beyond this the
// search space (m!·m! orders) is hopeless — the same reason the paper's ILP
// "was unable to find a solution for any of the experiments" at real scale.
const MaxExactJobs = 12

// DefaultExactNodeLimit caps the branch-and-bound search. When the limit is
// hit, the best schedule found so far is returned with Optimal=false.
const DefaultExactNodeLimit = 20_000_000

// ExactResult augments a Schedule with search diagnostics.
type ExactResult struct {
	*Schedule
	Optimal bool  // true if the search ran to completion
	Nodes   int64 // branch-and-bound nodes explored
}

// solveExact finds the optimal (comp order, io order) pair by
// branch-and-bound over both permutations, using ASAP compaction (every
// feasible schedule is dominated by the ASAP schedule of the orders it
// induces, so searching order pairs is exhaustive).
func solveExact(ctx context.Context, p *Problem) (*Schedule, error) {
	res, err := SolveExactCtx(ctx, p, DefaultExactNodeLimit)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// SolveExact runs the exact solver with an explicit node budget.
func SolveExact(p *Problem, nodeLimit int64) (*ExactResult, error) {
	return SolveExactCtx(context.Background(), p, nodeLimit)
}

// SolveExactCtx is SolveExact with cooperative cancellation: the search
// polls ctx every few thousand branch-and-bound nodes and returns ctx's
// error when it fires, so a deadline bounds the worst-case m!·m! search in
// wall-clock terms, not just node count. A nil ctx never cancels.
func SolveExactCtx(ctx context.Context, p *Problem, nodeLimit int64) (*ExactResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	m := len(p.Jobs)
	if m > MaxExactJobs {
		return nil, fmt.Errorf("sched: exact solver limited to %d jobs, got %d", MaxExactJobs, m)
	}
	if m == 0 {
		s := finishSchedule(p, nil)
		s.Algorithm = Exact
		return &ExactResult{Schedule: s, Optimal: true}, nil
	}

	// Warm start from the best heuristic so pruning bites immediately.
	var best *Schedule
	for _, alg := range Algorithms() {
		s, err := Solve(p, alg)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Overall < best.Overall {
			best = s
		}
	}

	e := &exactSearch{
		p:         p,
		ctx:       ctx,
		nodeLimit: nodeLimit,
		best:      best,
		bestVal:   best.Overall,
	}
	e.compOrder = make([]int, 0, m)
	e.used = make([]bool, m)
	e.ioIv = make([]Interval, m)
	for _, j := range p.Jobs {
		e.sumComp += j.Comp
		e.sumIOAll += j.IO
	}
	// Static machine-2 load bound: every write is sequential on the
	// background thread and none can start before the earliest possible
	// compression completion.
	earliest := math.Inf(1)
	tl := newTimeline(p.CompHoles)
	for _, j := range p.Jobs {
		if end := tl.fitsHoles(0, j.Comp) + j.Comp; end < earliest {
			earliest = end
		}
	}
	if !math.IsInf(earliest, 1) {
		e.ioLoadLB = earliest + e.sumIOAll
	}
	e.dfsComp(newTimeline(p.CompHoles), make([]float64, m))
	if e.cancelled {
		return nil, ctx.Err()
	}

	e.best.Algorithm = Exact
	return &ExactResult{Schedule: e.best, Optimal: !e.capped, Nodes: e.nodes}, nil
}

type exactSearch struct {
	p         *Problem
	ctx       context.Context
	nodeLimit int64
	nodes     int64
	lastPoll  int64 // node count at the previous ctx poll
	capped    bool
	cancelled bool

	compOrder []int
	used      []bool
	sumComp   float64    // total comp duration of jobs not yet in compOrder
	sumIOAll  float64    // total io duration over all jobs
	ioLoadLB  float64    // static lower bound on the io makespan
	ioIv      []Interval // io placement per job index, for reconstruction
	best      *Schedule
	bestVal   float64
}

// ctxPollEvery is how many branch-and-bound nodes may elapse between context
// polls: rare enough to stay off the profile, frequent enough (< 1ms of
// search) that a deadline stops the solver promptly.
const ctxPollEvery = 8192

func (e *exactSearch) done() bool {
	if e.cancelled {
		return true
	}
	if e.nodes-e.lastPoll >= ctxPollEvery {
		e.lastPoll = e.nodes
		if e.ctx.Err() != nil {
			e.cancelled = true
			return true
		}
	}
	if e.nodes >= e.nodeLimit {
		e.capped = true
		return true
	}
	// Nothing can beat the horizon or the machine-2 load bound: every
	// schedule has Overall >= max(Horizon, ioLoadLB).
	return e.bestVal <= math.Max(e.p.Horizon, e.ioLoadLB)+timeEps
}

// dfsComp extends the compression order. compEnds[idx] records each job's
// compression end once placed.
func (e *exactSearch) dfsComp(tl *timeline, compEnds []float64) {
	if e.done() {
		return
	}
	m := len(e.p.Jobs)
	if len(e.compOrder) == m {
		ioTL := newTimeline(e.p.IOHoles)
		e.dfsIO(ioTL, compEnds, make([]bool, m), 0, e.sumIOTotal())
		return
	}
	for idx := 0; idx < m; idx++ {
		if e.used[idx] {
			continue
		}
		e.nodes++
		j := e.p.Jobs[idx]
		save := tl.clone()
		c := tl.placeAfterFrontier(0, j.Comp)
		// Lower bound: remaining comps run back-to-back from the frontier
		// (ignoring holes), then the shortest remaining io follows; placed
		// jobs each force compEnd + io.
		remComp := e.sumComp - j.Comp
		lb := tl.frontier + remComp
		minIO := math.Inf(1)
		for k := 0; k < m; k++ {
			if k == idx || e.used[k] {
				continue
			}
			if e.p.Jobs[k].IO < minIO {
				minIO = e.p.Jobs[k].IO
			}
		}
		if math.IsInf(minIO, 1) {
			minIO = 0
		}
		lb += minIO
		if c.End+j.IO > lb {
			lb = c.End + j.IO
		}
		if e.ioLoadLB > lb {
			lb = e.ioLoadLB
		}
		if math.Max(e.p.Horizon, lb) < e.bestVal-timeEps {
			e.used[idx] = true
			e.compOrder = append(e.compOrder, idx)
			e.sumComp -= j.Comp
			compEnds[idx] = c.End

			e.dfsComp(tl, compEnds)

			e.sumComp += j.Comp
			e.compOrder = e.compOrder[:len(e.compOrder)-1]
			e.used[idx] = false
		}
		*tl = *save
		if e.done() {
			return
		}
	}
}

func (e *exactSearch) sumIOTotal() float64 {
	s := 0.0
	for _, j := range e.p.Jobs {
		s += j.IO
	}
	return s
}

// dfsIO extends the io order given fixed compression end times.
func (e *exactSearch) dfsIO(tl *timeline, compEnds []float64, placed []bool, nPlaced int, remIO float64) {
	if e.done() {
		return
	}
	m := len(e.p.Jobs)
	if nPlaced == m {
		s := e.buildSchedule(compEnds, tl)
		if s.Overall < e.bestVal-timeEps {
			e.best = s
			e.bestVal = s.Overall
		}
		return
	}
	for idx := 0; idx < m; idx++ {
		if placed[idx] {
			continue
		}
		e.nodes++
		j := e.p.Jobs[idx]
		save := tl.clone()
		w := tl.placeAfterFrontier(math.Max(compEnds[idx], j.Release), j.IO)
		// Lower bound: remaining io back-to-back from the new frontier.
		lb := tl.frontier + (remIO - j.IO)
		if w.End > lb {
			lb = w.End
		}
		if math.Max(e.p.Horizon, lb) < e.bestVal-timeEps {
			placed[idx] = true
			e.ioIv[idx] = w
			e.dfsIO(tl, compEnds, placed, nPlaced+1, remIO-j.IO)
			placed[idx] = false
		}
		*tl = *save
		if e.done() {
			return
		}
	}
}

func (e *exactSearch) buildSchedule(compEnds []float64, tl *timeline) *Schedule {
	m := len(e.p.Jobs)
	placements := make([]Placement, m)
	for idx := 0; idx < m; idx++ {
		j := e.p.Jobs[idx]
		placements[idx] = Placement{
			JobID:     j.ID,
			CompStart: compEnds[idx] - j.Comp,
			CompEnd:   compEnds[idx],
			IOStart:   e.ioIv[idx].Start,
			IOEnd:     e.ioIv[idx].End,
		}
	}
	return finishSchedule(e.p, placements)
}
