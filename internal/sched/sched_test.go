package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrDie(t *testing.T, p *Problem, alg Algorithm) *Schedule {
	t.Helper()
	s, err := Solve(p, alg)
	if err != nil {
		t.Fatalf("Solve(%s): %v", alg, err)
	}
	if err := Validate(p, s); err != nil {
		t.Fatalf("Validate(%s): %v", alg, err)
	}
	return s
}

func TestNormalizeMergesHoles(t *testing.T) {
	p := &Problem{
		Horizon:   10,
		CompHoles: []Interval{{5, 7}, {1, 3}, {2, 4}},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := []Interval{{1, 4}, {5, 7}}
	if len(p.CompHoles) != len(want) {
		t.Fatalf("holes = %v, want %v", p.CompHoles, want)
	}
	for i := range want {
		if p.CompHoles[i] != want[i] {
			t.Fatalf("holes = %v, want %v", p.CompHoles, want)
		}
	}
}

func TestNormalizeRejectsBadInput(t *testing.T) {
	if err := (&Problem{Horizon: -1}).Normalize(); err == nil {
		t.Fatal("negative horizon accepted")
	}
	p := &Problem{Horizon: 1, CompHoles: []Interval{{2, 1}}}
	if err := p.Normalize(); err == nil {
		t.Fatal("inverted interval accepted")
	}
	p2 := &Problem{Horizon: 1, Jobs: []Job{{ID: 0, Comp: -1, IO: 1}}}
	if err := p2.Normalize(); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestJohnsonOrderMatchesPaper(t *testing.T) {
	p := Figure1Problem()
	order := johnsonOrder(p.Jobs)
	// M1 = {job0 (c=1<=2), job2 (c=2<=2)} sorted by comp asc -> 0, 2.
	// M2 = {job1 (2>1), job3 (3>2)} sorted by io desc -> 3, 1.
	want := []int{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("johnson order = %v, want %v", order, want)
		}
	}
}

// The paper's Figure 1c: ExtJohnson yields makespan 13 on the worked example
// (B2 spills to 13 after R2 ends at 12).
func TestFigure1ExtJohnson(t *testing.T) {
	p := Figure1Problem()
	s := solveOrDie(t, p, ExtJohnson)
	if math.Abs(s.Makespan-13) > timeEps {
		t.Fatalf("ExtJohnson makespan = %v, want 13", s.Makespan)
	}
	// Spot-check the placements derived in Figure 1c.
	pl := s.Placements
	if pl[0].CompStart != 0 || pl[0].CompEnd != 1 {
		t.Fatalf("R1 at [%v,%v), want [0,1)", pl[0].CompStart, pl[0].CompEnd)
	}
	if pl[2].CompStart != 1 || pl[2].CompEnd != 3 {
		t.Fatalf("R3 at [%v,%v), want [1,3)", pl[2].CompStart, pl[2].CompEnd)
	}
	if pl[3].CompStart != 7 || pl[3].CompEnd != 10 {
		t.Fatalf("R4 at [%v,%v), want [7,10)", pl[3].CompStart, pl[3].CompEnd)
	}
	if pl[1].CompStart != 10 || pl[1].CompEnd != 12 {
		t.Fatalf("R2 at [%v,%v), want [10,12)", pl[1].CompStart, pl[1].CompEnd)
	}
}

// The paper's Figure 1d: backfilling slots job 2 into the [4,6) compute gap
// and its write into the [7,10) background gap, giving makespan 12.
func TestFigure1ExtJohnsonBF(t *testing.T) {
	p := Figure1Problem()
	s := solveOrDie(t, p, ExtJohnsonBF)
	if math.Abs(s.Makespan-12) > timeEps {
		t.Fatalf("ExtJohnson+BF makespan = %v, want 12", s.Makespan)
	}
	pl := s.Placements
	if pl[1].CompStart != 4 || pl[1].CompEnd != 6 {
		t.Fatalf("R2 at [%v,%v), want [4,6)", pl[1].CompStart, pl[1].CompEnd)
	}
	if pl[1].IOStart != 7 || pl[1].IOEnd != 8 {
		t.Fatalf("B2 at [%v,%v), want [7,8)", pl[1].IOStart, pl[1].IOEnd)
	}
	if s.Overall != 12 {
		t.Fatalf("overall = %v, want 12 (concealed)", s.Overall)
	}
}

func TestBackfillNeverWorseOnFigure1(t *testing.T) {
	p := Figure1Problem()
	for _, pair := range [][2]Algorithm{{ExtJohnson, ExtJohnsonBF}, {GenList, GenListBF}} {
		plain := solveOrDie(t, p, pair[0])
		bf := solveOrDie(t, p, pair[1])
		if bf.Overall > plain.Overall+timeEps {
			t.Fatalf("%s (%v) worse than %s (%v)", pair[1], bf.Overall, pair[0], plain.Overall)
		}
	}
}

func TestAllAlgorithmsValidateOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultGenConfig()
		cfg.Jobs = 1 + rng.Intn(24)
		cfg.CompHoles = rng.Intn(5)
		cfg.IOHoles = rng.Intn(5)
		cfg.HoleFrac = rng.Float64() * 0.6
		p := RandomProblem(rng, cfg)
		for _, alg := range Algorithms() {
			solveOrDie(t, p, alg)
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{Horizon: 3}
	for _, alg := range append(Algorithms(), Exact) {
		s := solveOrDie(t, p, alg)
		if s.Overall != 3 {
			t.Fatalf("%s: overall = %v, want horizon 3", alg, s.Overall)
		}
	}
}

func TestSingleJobNoHoles(t *testing.T) {
	p := &Problem{Horizon: 10, Jobs: []Job{{ID: 0, Comp: 2, IO: 3}}}
	for _, alg := range append(Algorithms(), Exact) {
		s := solveOrDie(t, p, alg)
		if math.Abs(s.Makespan-5) > timeEps {
			t.Fatalf("%s: makespan = %v, want 5", alg, s.Makespan)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	p := &Problem{Horizon: 1}
	if _, err := Solve(p, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// Johnson's algorithm is optimal without holes; our extension must reproduce
// that optimum, and every other heuristic must not beat the exact solver.
func TestNoHolesJohnsonOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		cfg := DefaultGenConfig()
		cfg.Jobs = 2 + rng.Intn(6)
		cfg.CompHoles, cfg.IOHoles = 0, 0
		cfg.Horizon = 0 // pure makespan comparison
		p := RandomProblem(rng, cfg)
		exact := solveOrDie(t, p, Exact)
		john := solveOrDie(t, p, ExtJohnson)
		if john.Makespan > exact.Makespan+1e-6 {
			t.Fatalf("trial %d: Johnson %v > exact %v without holes", trial, john.Makespan, exact.Makespan)
		}
	}
}

func TestExactDominatesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		cfg := DefaultGenConfig()
		cfg.Jobs = 2 + rng.Intn(5)
		cfg.CompHoles = rng.Intn(3)
		cfg.IOHoles = rng.Intn(3)
		cfg.Horizon = 0
		p := RandomProblem(rng, cfg)
		res, err := SolveExact(p, DefaultExactNodeLimit)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: exact search capped on a tiny instance", trial)
		}
		if err := Validate(p, res.Schedule); err != nil {
			t.Fatal(err)
		}
		for _, alg := range Algorithms() {
			h := solveOrDie(t, p, alg)
			if h.Overall < res.Overall-1e-6 {
				t.Fatalf("trial %d: %s (%v) beat exact (%v)", trial, alg, h.Overall, res.Overall)
			}
		}
	}
}

func TestExactRejectsLargeInstance(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = MaxExactJobs + 1
	p := RandomProblem(rand.New(rand.NewSource(1)), cfg)
	if _, err := Solve(p, Exact); err == nil {
		t.Fatal("oversized exact instance accepted")
	}
}

func TestGreedyNotWorseThanItsBaseOrder(t *testing.T) {
	// OneListGreedy explores a superset of GenerationListSchedule's single
	// order, so it can never be worse.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		cfg := DefaultGenConfig()
		cfg.Jobs = 2 + rng.Intn(12)
		p := RandomProblem(rng, cfg)
		gen := solveOrDie(t, p, GenList)
		greedy := solveOrDie(t, p, OneListGreedy)
		if greedy.Overall > gen.Overall+1e-6 {
			t.Fatalf("trial %d: OneListGreedy %v worse than GenList %v", trial, greedy.Overall, gen.Overall)
		}
	}
}

func TestTimelinePlacement(t *testing.T) {
	tl := newTimeline([]Interval{{2, 3}, {5, 8}})
	// Fits before the first hole.
	if iv := tl.placeAfterFrontier(0, 2); iv != (Interval{0, 2}) {
		t.Fatalf("got %v", iv)
	}
	// Does not fit in [3,5) if d=3: jumps past second hole.
	if iv := tl.placeAfterFrontier(0, 3); iv != (Interval{8, 11}) {
		t.Fatalf("got %v", iv)
	}
	tl2 := newTimeline([]Interval{{2, 3}})
	tl2.insert(Interval{0, 1})
	tl2.insert(Interval{4, 6})
	// Backfill d=1 fits at [1,2).
	if iv := tl2.placeEarliest(0, 1); iv != (Interval{1, 2}) {
		t.Fatalf("backfill got %v", iv)
	}
	// Next d=1 must go after [4,6) because [3,4) is now the only gap... it
	// is free, so it lands there.
	if iv := tl2.placeEarliest(0, 1); iv != (Interval{3, 4}) {
		t.Fatalf("backfill got %v", iv)
	}
	if iv := tl2.placeEarliest(0, 1); iv != (Interval{6, 7}) {
		t.Fatalf("backfill got %v", iv)
	}
}

func TestBackfillNeverDelaysPlacedTasks(t *testing.T) {
	// Property: with backfilling, placements done earlier keep their start
	// times as later jobs arrive. We verify by re-running prefixes.
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultGenConfig()
	cfg.Jobs = 16
	p := RandomProblem(rng, cfg)
	full := solveOrDie(t, p, ExtJohnsonBF)
	order := johnsonOrder(p.Jobs)
	for cut := 1; cut < len(order); cut++ {
		sub := &Problem{Horizon: p.Horizon, CompHoles: p.CompHoles, IOHoles: p.IOHoles}
		for _, idx := range order[:cut] {
			sub.Jobs = append(sub.Jobs, p.Jobs[idx])
		}
		ss, err := Solve(sub, ExtJohnsonBF)
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range order[:cut] {
			if math.Abs(ss.Placements[i].CompStart-full.Placements[idx].CompStart) > timeEps {
				t.Fatalf("cut %d: job %d comp start moved from %v to %v",
					cut, p.Jobs[idx].ID, ss.Placements[i].CompStart, full.Placements[idx].CompStart)
			}
			if math.Abs(ss.Placements[i].IOStart-full.Placements[idx].IOStart) > timeEps {
				t.Fatalf("cut %d: job %d io start moved", cut, p.Jobs[idx].ID)
			}
		}
	}
}

// Property: all heuristics produce valid schedules on arbitrary instances.
func TestQuickValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := GenConfig{
			Jobs:       1 + rng.Intn(20),
			CompHoles:  rng.Intn(6),
			IOHoles:    rng.Intn(6),
			Horizon:    rng.Float64()*10 + 0.1,
			HoleFrac:   rng.Float64() * 0.7,
			MeanComp:   rng.Float64()*0.2 + 0.001,
			MeanIO:     rng.Float64()*0.2 + 0.001,
			JitterFrac: rng.Float64(),
		}
		p := RandomProblem(rng, cfg)
		for _, alg := range Algorithms() {
			s, err := Solve(p, alg)
			if err != nil {
				return false
			}
			if err := Validate(p, s); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the overall time is never below the horizon and never below the
// trivial load lower bounds.
func TestQuickLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultGenConfig()
		cfg.Jobs = 1 + rng.Intn(16)
		p := RandomProblem(rng, cfg)
		var sumComp, sumIO float64
		for _, j := range p.Jobs {
			sumComp += j.Comp
			sumIO += j.IO
		}
		for _, alg := range Algorithms() {
			s, err := Solve(p, alg)
			if err != nil {
				return false
			}
			if s.Overall < p.Horizon-timeEps {
				return false
			}
			if s.Makespan < sumIO-timeEps { // machine-2 load bound (no holes needed)
				_ = sumComp
				// Makespan can be below sumIO only if... it cannot: all io
				// tasks are sequential on one machine.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttRenders(t *testing.T) {
	p := Figure1Problem()
	s := solveOrDie(t, p, ExtJohnsonBF)
	g := Gantt(p, s, 2)
	if len(g) == 0 {
		t.Fatal("empty gantt")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := Figure1Problem()
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	s := solveOrDie(t, p, ExtJohnsonBF)

	// Dependency violation.
	bad := *s
	bad.Placements = append([]Placement(nil), s.Placements...)
	bad.Placements[0].IOStart = bad.Placements[0].CompStart - 1
	bad.Placements[0].IOEnd = bad.Placements[0].IOStart + p.Jobs[0].IO
	if err := Validate(p, &bad); err == nil {
		t.Fatal("dependency violation not caught")
	}

	// Hole collision.
	bad2 := *s
	bad2.Placements = append([]Placement(nil), s.Placements...)
	bad2.Placements[0].CompStart = 3.5
	bad2.Placements[0].CompEnd = 3.5 + p.Jobs[0].Comp
	if err := Validate(p, &bad2); err == nil {
		t.Fatal("hole collision not caught")
	}

	// Wrong makespan.
	bad3 := *s
	bad3.Makespan += 5
	if err := Validate(p, &bad3); err == nil {
		t.Fatal("wrong makespan not caught")
	}
}

func BenchmarkExtJohnsonBF32Jobs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := RandomProblem(rng, DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, ExtJohnsonBF); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoListsGreedy32Jobs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := RandomProblem(rng, DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, TwoListsGreedy); err != nil {
			b.Fatal(err)
		}
	}
}
