// Package sched implements the paper's core contribution (§3): scheduling
// compression and I/O tasks around immovable computation, modelled as a
// two-machine flow shop with deterministic unavailability intervals and
// non-resumable jobs.
//
// Machine 1 is the main (compute) thread: compression tasks R_1..R_m must
// avoid the computation intervals Y_1..Y_k. Machine 2 is the background
// thread: I/O tasks B_1..B_m must avoid the core tasks G_1..G_o, and B_j may
// not start before R_j completes. The objective is to minimise
//
//	T_overall = max(Horizon, max_j end(B_j))
//
// i.e. compression-accelerated I/O is "concealed" when every write finishes
// inside the iteration window.
//
// The package provides the six heuristics of §3.3 (ExtJohnson,
// ExtJohnson+BF, GenerationListSchedule, GenerationListSchedule+BF,
// OneListGreedy, TwoListsGreedy) and an exact branch-and-bound reference
// that plays the role of the Appendix-A ILP.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Len returns the interval's duration.
func (iv Interval) Len() float64 { return iv.End - iv.Start }

// Overlaps reports whether two half-open intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

func (iv Interval) valid() bool {
	return !math.IsNaN(iv.Start) && !math.IsNaN(iv.End) && iv.End >= iv.Start && iv.Start >= 0
}

// Job pairs a compression task with its dependent I/O task (a "job" in the
// paper's flow-shop formulation).
type Job struct {
	ID   int     `json:"id"`   // stable identity; also the generation order (§3.3.2)
	Comp float64 `json:"comp"` // compression duration on the main thread
	IO   float64 `json:"io"`   // write duration on the background thread
	// Release is an additional earliest-start time for the I/O task, used
	// when intra-node balancing (§3.4) moves a write to a rank that does
	// not run its compression: the write may not start before the origin
	// rank's predicted compression completion. Zero for ordinary jobs.
	Release float64 `json:"release,omitempty"`
}

// Problem is one iteration's scheduling instance.
type Problem struct {
	// Horizon is T_n, the iteration length. Tasks may spill past it; the
	// objective then exceeds Horizon.
	Horizon float64 `json:"horizon"`
	// CompHoles are the computation intervals Y_i on the main thread
	// (sorted, non-overlapping after Normalize).
	CompHoles []Interval `json:"compHoles,omitempty"`
	// IOHoles are the core tasks G_i on the background thread.
	IOHoles []Interval `json:"ioHoles,omitempty"`
	// Jobs are the m compression+I/O pairs.
	Jobs []Job `json:"jobs"`
}

// Normalize sorts and merges each hole list and validates the instance.
func (p *Problem) Normalize() error {
	if p.Horizon < 0 || math.IsNaN(p.Horizon) {
		return fmt.Errorf("sched: invalid horizon %v", p.Horizon)
	}
	for i, j := range p.Jobs {
		if j.Comp < 0 || j.IO < 0 || math.IsNaN(j.Comp) || math.IsNaN(j.IO) {
			return fmt.Errorf("sched: job %d has invalid durations (%v, %v)", i, j.Comp, j.IO)
		}
		if j.Release < 0 || math.IsNaN(j.Release) {
			return fmt.Errorf("sched: job %d has invalid release %v", i, j.Release)
		}
	}
	var err error
	if p.CompHoles, err = mergeHoles(p.CompHoles); err != nil {
		return fmt.Errorf("sched: comp holes: %w", err)
	}
	if p.IOHoles, err = mergeHoles(p.IOHoles); err != nil {
		return fmt.Errorf("sched: io holes: %w", err)
	}
	return nil
}

func mergeHoles(hs []Interval) ([]Interval, error) {
	for _, h := range hs {
		if !h.valid() {
			return nil, fmt.Errorf("invalid interval %+v", h)
		}
	}
	if len(hs) == 0 {
		return nil, nil
	}
	sorted := make([]Interval, len(hs))
	copy(sorted, hs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
	out := sorted[:1]
	for _, h := range sorted[1:] {
		last := &out[len(out)-1]
		if h.Start <= last.End {
			if h.End > last.End {
				last.End = h.End
			}
			continue
		}
		out = append(out, h)
	}
	return out, nil
}

// Placement records where one job's two tasks landed.
type Placement struct {
	JobID     int     `json:"jobID"`
	CompStart float64 `json:"compStart"`
	CompEnd   float64 `json:"compEnd"`
	IOStart   float64 `json:"ioStart"`
	IOEnd     float64 `json:"ioEnd"`
}

// Schedule is a complete solution to a Problem.
type Schedule struct {
	Algorithm  Algorithm   `json:"algorithm"`
	Placements []Placement `json:"placements"` // indexed by position in Problem.Jobs (JobID order of the instance)
	// Makespan is max end(B_j) (0 when there are no jobs).
	Makespan float64 `json:"makespan"`
	// Overall is the iteration duration max(Horizon, Makespan) — the
	// paper's T_overall.
	Overall float64 `json:"overall"`
}

// Clone returns a deep copy of the schedule, so callers handing the same
// solve result to multiple consumers (memo caches, coalesced requests,
// batch duplicates) never share mutable placements.
func (s *Schedule) Clone() *Schedule {
	out := *s
	out.Placements = make([]Placement, len(s.Placements))
	copy(out.Placements, s.Placements)
	return &out
}

const timeEps = 1e-9

// Validate checks every constraint of §3.1 against the problem: tasks avoid
// holes, tasks on one machine do not overlap each other, each I/O task
// starts no earlier than its compression task ends, durations match, and the
// reported makespan is consistent.
func Validate(p *Problem, s *Schedule) error {
	if len(s.Placements) != len(p.Jobs) {
		return fmt.Errorf("sched: %d placements for %d jobs", len(s.Placements), len(p.Jobs))
	}
	seen := make(map[int]bool, len(p.Jobs))
	jobByID := make(map[int]Job, len(p.Jobs))
	for _, j := range p.Jobs {
		jobByID[j.ID] = j
	}
	var comp, io []Interval
	maxEnd := 0.0
	for _, pl := range s.Placements {
		j, ok := jobByID[pl.JobID]
		if !ok {
			return fmt.Errorf("sched: placement for unknown job %d", pl.JobID)
		}
		if seen[pl.JobID] {
			return fmt.Errorf("sched: job %d placed twice", pl.JobID)
		}
		seen[pl.JobID] = true
		if pl.CompStart < -timeEps {
			return fmt.Errorf("sched: job %d compression starts at %v before time 0", pl.JobID, pl.CompStart)
		}
		if math.Abs(pl.CompEnd-pl.CompStart-j.Comp) > timeEps {
			return fmt.Errorf("sched: job %d compression duration mismatch", pl.JobID)
		}
		if math.Abs(pl.IOEnd-pl.IOStart-j.IO) > timeEps {
			return fmt.Errorf("sched: job %d io duration mismatch", pl.JobID)
		}
		if pl.IOStart < pl.CompEnd-timeEps {
			return fmt.Errorf("sched: job %d io starts at %v before compression ends at %v",
				pl.JobID, pl.IOStart, pl.CompEnd)
		}
		if pl.IOStart < j.Release-timeEps {
			return fmt.Errorf("sched: job %d io starts at %v before release %v",
				pl.JobID, pl.IOStart, j.Release)
		}
		comp = append(comp, Interval{pl.CompStart, pl.CompEnd})
		io = append(io, Interval{pl.IOStart, pl.IOEnd})
		if pl.IOEnd > maxEnd {
			maxEnd = pl.IOEnd
		}
	}
	if err := checkNoOverlap(comp, p.CompHoles, "compression"); err != nil {
		return err
	}
	if err := checkNoOverlap(io, p.IOHoles, "io"); err != nil {
		return err
	}
	if math.Abs(s.Makespan-maxEnd) > timeEps {
		return fmt.Errorf("sched: makespan %v inconsistent with placements (max end %v)", s.Makespan, maxEnd)
	}
	want := math.Max(p.Horizon, s.Makespan)
	if math.Abs(s.Overall-want) > timeEps {
		return fmt.Errorf("sched: overall %v, want %v", s.Overall, want)
	}
	return nil
}

func checkNoOverlap(tasks, holes []Interval, kind string) error {
	sorted := make([]Interval, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Start < sorted[i-1].End-timeEps && sorted[i].Len() > 0 && sorted[i-1].Len() > 0 {
			return fmt.Errorf("sched: %s tasks overlap: %+v and %+v", kind, sorted[i-1], sorted[i])
		}
	}
	for _, t := range sorted {
		if t.Len() <= 0 {
			continue
		}
		for _, h := range holes {
			if h.Len() > 0 && t.Start < h.End-timeEps && h.Start < t.End-timeEps {
				return fmt.Errorf("sched: %s task %+v overlaps hole %+v", kind, t, h)
			}
		}
	}
	return nil
}

// ErrUnknownAlgorithm is returned by Solve for an unregistered algorithm.
var ErrUnknownAlgorithm = errors.New("sched: unknown algorithm")
