package simapp

import (
	"fmt"
	"strconv"

	"repro/internal/fields"
	"repro/internal/huffman"
	"repro/internal/pfs"
	"repro/internal/sz"
)

// VerifySnapshot opens one Ours-mode snapshot and checks every rank/field
// against the generator: chunks must decompress (using the persisted shared
// Huffman tree) and the reconstruction must respect the field's error
// bound. It returns the number of chunks verified.
func VerifySnapshot(fs *pfs.FS, name string, cfg Config) (int, error) {
	backend, err := cfg.storageBackend()
	if err != nil {
		return 0, err
	}
	fr, err := backend.Open(fs, name)
	if err != nil {
		return 0, err
	}
	gen, err := fields.NewGenerator(fields.Config{
		Dims: cfg.Dims, Fields: cfg.Specs, Ranks: cfg.Ranks,
		Seed: cfg.Seed, Stage: cfg.Stage,
	})
	if err != nil {
		return 0, err
	}
	splits, err := sz.Split(cfg.Dims, cfg.BlockBytes)
	if err != nil {
		return 0, err
	}
	checked := 0
	for r := 0; r < cfg.Ranks; r++ {
		for fi, spec := range cfg.Specs {
			dsName := fmt.Sprintf("/rank%03d/%s", r, spec.Name)
			attrs, err := fr.Attrs(dsName)
			if err != nil {
				return checked, err
			}
			iter, err := strconv.Atoi(attrs["iter"])
			if err != nil {
				return checked, fmt.Errorf("simapp: dataset %s has no iter attr", dsName)
			}
			var tree *huffman.Tree
			if treeRef := attrs["tree"]; treeRef != "" {
				blob, err := fr.ReadChunk(treeRef, 0)
				if err != nil {
					return checked, fmt.Errorf("simapp: reading tree %s: %w", treeRef, err)
				}
				tree, err = huffman.Unmarshal(blob)
				if err != nil {
					return checked, err
				}
			}
			want := gen.Field(r, spec, iter)
			parts := make([][]float32, len(splits))
			for bi := range splits {
				blob, err := fr.ReadChunk(dsName, bi)
				if err != nil {
					return checked, err
				}
				degraded, err := fr.ChunkDegraded(dsName, bi)
				if err != nil {
					return checked, err
				}
				if degraded {
					// The recovery layer rerouted this chunk uncompressed:
					// its bytes are raw big-endian float32, not an SZ blob.
					if len(blob) != 4*splits[bi].Dims.N() {
						return checked, fmt.Errorf("simapp: %s degraded chunk %d has %d bytes, want %d",
							dsName, bi, len(blob), 4*splits[bi].Dims.N())
					}
					parts[bi] = rawFloats(blob)
					checked++
					continue
				}
				dec, _, err := sz.Decompress(blob, tree)
				if err != nil {
					return checked, fmt.Errorf("simapp: %s chunk %d: %w", dsName, bi, err)
				}
				parts[bi] = dec
				checked++
			}
			got, err := sz.Reassemble(splits, parts, cfg.Dims)
			if err != nil {
				return checked, err
			}
			if e := sz.MaxAbsError(want, got); e > spec.ErrorBound {
				return checked, fmt.Errorf("simapp: %s error %g exceeds bound %g (iter %d)",
					dsName, e, spec.ErrorBound, iter)
			}
			_ = fi
		}
	}
	return checked, nil
}

// VerifyRawSnapshot checks a Baseline/AsyncIO (uncompressed) snapshot
// byte-exactly against the generator.
func VerifyRawSnapshot(fs *pfs.FS, name string, cfg Config) (int, error) {
	backend, err := cfg.storageBackend()
	if err != nil {
		return 0, err
	}
	fr, err := backend.Open(fs, name)
	if err != nil {
		return 0, err
	}
	gen, err := fields.NewGenerator(fields.Config{
		Dims: cfg.Dims, Fields: cfg.Specs, Ranks: cfg.Ranks,
		Seed: cfg.Seed, Stage: cfg.Stage,
	})
	if err != nil {
		return 0, err
	}
	checked := 0
	for r := 0; r < cfg.Ranks; r++ {
		for _, spec := range cfg.Specs {
			dsName := fmt.Sprintf("/rank%03d/%s", r, spec.Name)
			attrs, err := fr.Attrs(dsName)
			if err != nil {
				return checked, err
			}
			iter, err := strconv.Atoi(attrs["iter"])
			if err != nil {
				return checked, err
			}
			blob, err := fr.ReadChunk(dsName, 0)
			if err != nil {
				return checked, err
			}
			want := gen.Field(r, spec, iter)
			if len(blob) != 4*len(want) {
				return checked, fmt.Errorf("simapp: %s raw size %d, want %d", dsName, len(blob), 4*len(want))
			}
			for i, v := range want {
				u := uint32(blob[4*i])<<24 | uint32(blob[4*i+1])<<16 |
					uint32(blob[4*i+2])<<8 | uint32(blob[4*i+3])
				if u != f32bits(v) {
					return checked, fmt.Errorf("simapp: %s point %d mismatch", dsName, i)
				}
			}
			checked++
		}
	}
	return checked, nil
}
