package simapp

// Multi-application contention: K simapp instances share one pfs.FS (one set
// of OSTs, one burst buffer, one fault schedule) and run concurrently. An
// optional cluster coordinator (internal/coord) staggers the applications'
// start times so their I/O phases land in disjoint windows of a global
// period — Aupy et al.'s periodic I/O scheduling applied to the paper's
// in-situ workloads. See DESIGN.md §14.3.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/pfs"
)

// MultiResult aggregates one multi-application run.
type MultiResult struct {
	// Apps holds each application's Result, in input order. Note that
	// fault/retry counters come from the shared file system and storage
	// policies, so per-app attribution is approximate: InjectedFaults is
	// the cluster-wide total as observed at that app's finish.
	Apps  []*Result
	Names []string

	// Coordinated reports whether the periodic schedule was applied.
	Coordinated bool
	// Period and Offsets are the coordinator's schedule (zero when
	// uncoordinated). Busy is the scheduled PFS utilization.
	Period  float64
	Offsets []float64
	Busy    float64

	// Total is the whole-cluster wall time (first launch to last finish).
	Total time.Duration
	// BB summarizes the shared burst buffer at the end of the run.
	BB pfs.BBStats
}

// Profiles reduces the application configs to coordinator profiles. The I/O
// volume is the raw (uncompressed) per-iteration dump — a conservative
// profile: compression only shrinks the burst, so windows planned for the
// raw volume never overlap. Compute is the nominal iteration span (2×
// ComputeTime, the 50%-idle layout RunOn uses).
func Profiles(cfgs []Config) []coord.AppProfile {
	out := make([]coord.AppProfile, len(cfgs))
	for i, cfg := range cfgs {
		var vol int64
		for range cfg.Specs {
			vol += int64(cfg.Dims.N()) * 4
		}
		vol *= int64(cfg.Ranks)
		out[i] = coord.AppProfile{
			Name:     cfg.Name,
			Compute:  (2 * cfg.ComputeTime).Seconds(),
			IOVolume: vol,
		}
	}
	return out
}

// RunMulti executes the configured applications concurrently against one
// freshly created shared file system. When coordinate is true, each
// application's launch is delayed by the periodic schedule's offset.
func RunMulti(cfgs []Config, fsCfg pfs.Config, coordinate bool) (*MultiResult, error) {
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return nil, err
	}
	return RunMultiOn(cfgs, fs, coordinate)
}

// RunMultiOn is RunMulti against a caller-provided file system (so tests can
// inspect and verify the written snapshots afterwards).
func RunMultiOn(cfgs []Config, fs *pfs.FS, coordinate bool) (*MultiResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("simapp: no applications")
	}
	seen := make(map[string]bool, len(cfgs))
	for _, cfg := range cfgs {
		if err := cfg.validate(); err != nil {
			return nil, err
		}
		if seen[cfg.Name] {
			return nil, fmt.Errorf("simapp: duplicate application name %q (snapshot files would collide)", cfg.Name)
		}
		seen[cfg.Name] = true
	}

	res := &MultiResult{
		Apps:    make([]*Result, len(cfgs)),
		Names:   make([]string, len(cfgs)),
		Offsets: make([]float64, len(cfgs)),
	}
	for i, cfg := range cfgs {
		res.Names[i] = cfg.Name
	}
	if coordinate {
		fsc := fs.Config()
		sched, err := coord.Plan(Profiles(cfgs), float64(fsc.OSTs)*fsc.PerOSTBandwidth)
		if err != nil {
			return nil, err
		}
		res.Coordinated = true
		res.Period = sched.Period
		res.Busy = sched.Busy
		copy(res.Offsets, sched.Offsets)
	}
	// One recorder serves the shared file system. RunOn re-attaches each
	// app's own recorder when it has one, so give every app the same
	// recorder (or none) for a coherent storage timeline.
	for _, cfg := range cfgs {
		if cfg.Recorder != nil {
			fs.SetRecorder(cfg.Recorder)
			break
		}
	}

	start := time.Now()
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			if off := res.Offsets[i]; off > 0 {
				time.Sleep(time.Duration(off * float64(time.Second)))
			}
			res.Apps[i], errs[i] = RunOn(cfg, fs)
		}(i, cfg)
	}
	wg.Wait()
	res.Total = time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simapp: app %q: %w", cfgs[i].Name, err)
		}
	}
	res.BB = fs.BBStats()
	return res, nil
}
