package simapp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/balance"
	"repro/internal/bp"
	"repro/internal/h5"
	"repro/internal/huffman"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sz"
)

// defaultCompThroughput seeds the compression-time predictor before any
// observation exists (conservative Go-SZ single-core figure).
const defaultCompThroughput = 40 << 20 // bytes/s

// planned is one block's scheduling and execution context.
type planned struct {
	chunk    int // field*nBlocks + blockIdx
	fi       int // field index
	bi       int // block index within the field
	origin   int // global rank owning the compression
	predComp float64
	predIO   float64
	release  float64 // predicted origin compression end (moved writes)
}

// dumpPlan is everything iterOurs needs to execute one dump. Exactly one of
// h5w/bpw is populated, matching the snapshot backend.
type dumpPlan struct {
	jobs     []planned // local job index == sched Job.ID
	schedule *sched.Schedule
	h5w      []*h5.DatasetWriter // per field (shared-file backend)
	bpw      []*bp.DatasetWriter // per field (multi-file backend)
	eb       []float64           // per field error bound
}

// profile returns the static busy-interval profile in seconds, which in
// this mini-app is exactly the previous iteration's profile (segments are
// at fixed offsets, the paper's iteration-similarity assumption made
// literal).
func (rr *rankRun) profile() (comp, io []sched.Interval, horizon float64) {
	for _, s := range rr.mainSegs {
		comp = append(comp, sched.Interval{Start: s.start.Seconds(), End: (s.start + s.dur).Seconds()})
	}
	for _, s := range rr.bgSegs {
		io = append(io, sched.Interval{Start: s.start.Seconds(), End: (s.start + s.dur).Seconds()})
	}
	return comp, io, rr.span.Seconds()
}

// maintainTree returns the shared Huffman tree for a field, building (or
// rebuilding after TreeRebuild dumps) from the pending data's quantization
// codes, and persists it into the snapshot so readers can decode.
func (rr *rankRun) maintainTree(sn *snap, fi int, data []float32) (*huffman.Tree, error) {
	if rr.cfg.TreeRebuild <= 0 {
		return nil, nil // sharing disabled: every block embeds its own tree
	}
	tree := rr.trees[fi]
	if tree == nil || rr.treeAge[fi] >= rr.cfg.TreeRebuild {
		// Build from the first block's codes — cheap and representative.
		blk := rr.splits[0]
		codes, _, err := sz.Quantize(blk.Slice(data, rr.cfg.Dims), blk.Dims, sz.Options{
			ErrorBound: rr.cfg.Specs[fi].ErrorBound,
			Radius:     rr.cfg.Radius,
		})
		if err != nil {
			return nil, err
		}
		tree, err = sz.BuildTree(huffman.Histogram(2*rr.cfg.Radius, codes))
		if err != nil {
			return nil, err
		}
		rr.trees[fi] = tree
		rr.treeAge[fi] = 0
	}
	rr.treeAge[fi]++
	// Persist the tree for this snapshot's readers.
	if err := sn.persistBlob(rr, rr.treeName(fi), tree.Marshal()); err != nil {
		return nil, err
	}
	return tree, nil
}

// planDump predicts, reserves (shared-file backend), schedules, and
// balances one dump.
func (rr *rankRun) planDump(sn *snap, pending *pendingDump) (*dumpPlan, error) {
	cfg := rr.cfg
	nb := len(rr.splits)
	plan := &dumpPlan{
		eb: make([]float64, len(cfg.Specs)),
	}
	if sn.fw != nil {
		plan.h5w = make([]*h5.DatasetWriter, len(cfg.Specs))
	} else {
		plan.bpw = make([]*bp.DatasetWriter, len(cfg.Specs))
	}

	for fi, spec := range cfg.Specs {
		plan.eb[fi] = spec.ErrorBound
		if _, err := rr.maintainTree(sn, fi, pending.data[fi]); err != nil {
			return nil, err
		}
		var reservations, rawSizes []int64
		for bi, blk := range rr.splits {
			raw := int64(4 * blk.Dims.N())
			key := rr.blockPredKey(fi, bi)
			ratio := rr.ratioP.Predict(key, 8)
			predBytes := int64(float64(raw)/ratio) + 64
			reservations = append(reservations, predBytes+predBytes/5+512) // 20% safety
			rawSizes = append(rawSizes, raw)
		}
		attrs := map[string]string{
			"field":      spec.Name,
			"iter":       fmt.Sprint(pending.iter),
			"errorBound": fmt.Sprint(spec.ErrorBound),
			"radius":     fmt.Sprint(cfg.Radius),
		}
		if cfg.TreeRebuild > 0 {
			attrs["tree"] = rr.treeName(fi)
		}
		if sn.fw != nil {
			dw, err := sn.fw.CreateDataset(rr.dsName(fi),
				[]int{cfg.Dims.X, cfg.Dims.Y, cfg.Dims.Z}, 4, h5.FilterSZ,
				reservations, rawSizes, attrs)
			if err != nil {
				return nil, err
			}
			plan.h5w[fi] = dw
		} else {
			dw, err := sn.bw.CreateDataset(rr.rank(), rr.dsName(fi),
				[]int{cfg.Dims.X, cfg.Dims.Y, cfg.Dims.Z}, 4, bp.FilterSZ,
				rawSizes, attrs)
			if err != nil {
				return nil, err
			}
			plan.bpw[fi] = dw
		}

		for bi, blk := range rr.splits {
			raw := int64(4 * blk.Dims.N())
			key := rr.blockPredKey(fi, bi)
			ratio := rr.ratioP.Predict(key, 8)
			predBytes := int64(float64(raw) / ratio)
			plan.jobs = append(plan.jobs, planned{
				chunk:    fi*nb + bi,
				fi:       fi,
				bi:       bi,
				origin:   rr.rank(),
				predComp: rr.compP.PredictDuration(raw, float64(raw)/defaultCompThroughput),
				predIO:   rr.ioP.PredictDuration(predBytes, rr.fs.ModelDuration(predBytes).Seconds()),
			})
		}
	}

	compHoles, ioHoles, horizon := rr.profile()
	mkProblem := func(jobs []planned) *sched.Problem {
		p := &sched.Problem{Horizon: horizon}
		p.CompHoles = append(p.CompHoles, compHoles...)
		p.IOHoles = append(p.IOHoles, ioHoles...)
		for i, j := range jobs {
			comp := j.predComp
			if j.origin != rr.rank() {
				comp = 0
			}
			p.Jobs = append(p.Jobs, sched.Job{ID: i, Comp: comp, IO: j.predIO, Release: j.release})
		}
		return p
	}

	s, err := sched.Solve(mkProblem(plan.jobs), cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	plan.schedule = s

	if cfg.Balance && cfg.RanksPerNode > 1 {
		jobs, s2, err := rr.balanceNode(plan.jobs, s, mkProblem)
		if err != nil {
			return nil, err
		}
		plan.jobs, plan.schedule = jobs, s2
	}
	return plan, nil
}

// nodeJobInfo is the per-job summary exchanged for balancing.
type nodeJobInfo struct {
	Chunk       int
	PredIO      float64
	PredCompEnd float64
}

// balanceNode gathers predicted I/O loads on the node root, runs the §3.4
// reassignment, redistributes the assignments, and re-solves locally.
func (rr *rankRun) balanceNode(jobs []planned, s *sched.Schedule,
	mkProblem func([]planned) *sched.Problem) ([]planned, *sched.Schedule, error) {

	// Summaries in local job order.
	infos := make([]nodeJobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = nodeJobInfo{Chunk: j.chunk, PredIO: j.predIO}
	}
	for _, pl := range s.Placements {
		infos[pl.JobID].PredCompEnd = pl.CompEnd
	}
	gathered, err := rr.c.NodeGather(infos)
	if err != nil {
		return nil, nil, err
	}
	var assign [][]balance.Ref
	if gathered != nil { // node root
		tasks := make([][]balance.Task, len(gathered))
		for li, v := range gathered {
			for idx, info := range v.([]nodeJobInfo) {
				tasks[li] = append(tasks[li], balance.Task{Rank: li, Index: idx, Dur: info.PredIO})
			}
		}
		plan, err := balance.Balance(tasks)
		if err != nil {
			return nil, nil, err
		}
		assign = plan.PerRank
	}
	v, err := rr.c.NodeBcast(assign)
	if err != nil {
		return nil, nil, err
	}
	assign = v.([][]balance.Ref)
	gatheredAll, err := rr.nodeAllInfos(gathered)
	if err != nil {
		return nil, nil, err
	}

	// Rebuild this rank's job list: keep every local compression; writes as
	// assigned; append moved-in foreign writes.
	li := rr.c.NodeRank()
	keepWrite := make(map[int]bool) // local job index
	var foreign []balance.Ref
	for _, ref := range assign[li] {
		if ref.Rank == li {
			keepWrite[ref.Index] = true
		} else {
			foreign = append(foreign, ref)
		}
	}
	out := make([]planned, 0, len(jobs)+len(foreign))
	for i, j := range jobs {
		if !keepWrite[i] {
			j.predIO = 0 // write moved elsewhere
		}
		out = append(out, j)
	}
	base := rr.c.NodeRanks()[0]
	for _, ref := range foreign {
		info := gatheredAll[ref.Rank][ref.Index]
		out = append(out, planned{
			chunk:   info.Chunk,
			fi:      -1,
			origin:  base + ref.Rank,
			predIO:  info.PredIO,
			release: info.PredCompEnd,
		})
	}
	s2, err := sched.Solve(mkProblem(out), rr.cfg.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	return out, s2, nil
}

// nodeAllInfos distributes the gathered job summaries to every node rank.
func (rr *rankRun) nodeAllInfos(gathered []interface{}) ([][]nodeJobInfo, error) {
	var all [][]nodeJobInfo
	if gathered != nil {
		for _, v := range gathered {
			all = append(all, v.([]nodeJobInfo))
		}
	}
	v, err := rr.c.NodeBcast(all)
	if err != nil {
		return nil, err
	}
	return v.([][]nodeJobInfo), nil
}

// iterOurs executes one iteration with the full in situ pipeline.
func (rr *rankRun) iterOurs(start time.Time, sn *snap, pending *pendingDump) error {
	if pending == nil {
		return rr.iterComputeOnly(start)
	}
	plan, err := rr.planDump(sn, pending)
	if err != nil {
		return err
	}
	if rr.rec().Enabled() {
		rr.stats.notePlanned(rr.curIter, plan.schedule.Overall)
	}

	type ord struct {
		id    int
		start float64
	}
	var compOrder, ioOrder []ord
	for _, pl := range plan.schedule.Placements {
		compOrder = append(compOrder, ord{pl.JobID, pl.CompStart})
		ioOrder = append(ioOrder, ord{pl.JobID, pl.IOStart})
	}
	sort.Slice(compOrder, func(a, b int) bool { return compOrder[a].start < compOrder[b].start })
	sort.Slice(ioOrder, func(a, b int) bool { return ioOrder[a].start < ioOrder[b].start })

	// Compression tasks (main thread).
	var compTasks []wtask
	for _, o := range compOrder {
		j := plan.jobs[o.id]
		if j.origin != rr.rank() {
			continue
		}
		compTasks = append(compTasks, wtask{
			id:   o.id,
			pred: time.Duration(j.predComp * float64(time.Second)),
			run:  rr.compressTask(plan, j, pending),
		})
	}

	// Write tasks (background thread), through the compressed data buffer
	// (shared-file backend; multi-file appends carry their own write).
	sb := newSpanBuffer(rr, sn.fw, rr.cfg.BufferBytes)
	var ioTasks []wtask
	for _, o := range ioOrder {
		j := plan.jobs[o.id]
		if j.predIO <= 0 && j.origin == rr.rank() {
			continue // write moved to a sibling rank
		}
		res := rr.store.entry(blockKey{j.origin, j.chunk})
		label := fmt.Sprintf("write c%d", j.chunk)
		if j.origin != rr.rank() {
			label = fmt.Sprintf("write c%d (from rank %d)", j.chunk, j.origin)
		}
		ioTasks = append(ioTasks, wtask{
			id:    o.id,
			pred:  time.Duration(j.predIO * float64(time.Second)),
			ready: res.done,
			run:   rr.writeTask(sb, res),
			label: label,
			cat:   "write",
		})
	}
	if len(ioTasks) > 0 {
		ioTasks = append(ioTasks, wtask{id: -1, run: sb.flush, label: "buffer flush", cat: "write"})
	}

	done := make(chan error, 1)
	go func() { done <- runThreadObs(rr.rec(), rr.rank(), obs.ThreadIO, start, rr.bgSegs, ioTasks) }()
	if err := runThreadObs(rr.rec(), rr.rank(), obs.ThreadMain, start, rr.mainSegs, compTasks); err != nil {
		<-done
		return err
	}
	return <-done
}

// compressTask builds the main-thread closure for one block.
func (rr *rankRun) compressTask(plan *dumpPlan, j planned, pending *pendingDump) func() error {
	return func() error {
		blk := rr.splits[j.bi]
		slice := blk.Slice(pending.data[j.fi], rr.cfg.Dims)
		raw := int64(4 * blk.Dims.N())
		t0 := time.Now()
		blob, st, err := sz.Compress(slice, blk.Dims, sz.Options{
			ErrorBound: plan.eb[j.fi],
			Radius:     rr.cfg.Radius,
			Tree:       rr.trees[j.fi], // nil when sharing disabled
			Rec:        rr.rec(),
			Rank:       rr.rank(),
			Block:      j.chunk,
		})
		if err != nil {
			return err
		}
		rr.compP.Observe(raw, time.Since(t0).Seconds())
		rr.ratioP.Observe(rr.blockPredKey(j.fi, j.bi), st.Ratio)

		res := rr.store.entry(blockKey{rr.rank(), j.chunk})
		if plan.h5w != nil {
			off, err := plan.h5w[j.fi].MarkChunk(j.bi, int64(len(blob)))
			if err != nil {
				return err
			}
			res.data, res.off, res.ds = blob, off, j.fi
		} else {
			dw, bi := plan.bpw[j.fi], j.bi
			res.data = blob
			res.write = func() error {
				d, err := dw.WriteChunk(bi, blob)
				if err != nil {
					return err
				}
				rr.ioP.Observe(int64(len(blob)), d.Seconds())
				rr.stats.mu.Lock()
				rr.stats.writtenBytes += int64(len(blob))
				rr.stats.mu.Unlock()
				return nil
			}
		}
		close(res.done)

		rr.stats.mu.Lock()
		rr.stats.rawBytes += raw
		rr.stats.ratioSum += st.Ratio
		rr.stats.ratioN++
		rr.stats.escaped += int64(st.Escaped)
		rr.stats.points += int64(blk.Dims.N())
		rr.stats.mu.Unlock()
		return nil
	}
}

// spanBuffer is the wall-clock compressed data buffer (§4.2): consecutive
// writes into the same dataset's reserved extent coalesce into one span
// (slack between chunks is zero-filled — it lies inside this dataset's own
// reservation, so nothing else can live there). A dataset switch, a
// backward offset (e.g. an overflow-relocated chunk), an oversized gap, or
// reaching capacity flushes.
type spanBuffer struct {
	rr  *rankRun
	fw  *h5.FileWriter
	cap int

	ds     int
	start  int64
	buf    []byte
	blocks int
}

func newSpanBuffer(rr *rankRun, fw *h5.FileWriter, capBytes int) *spanBuffer {
	if capBytes <= 0 {
		capBytes = 1 // degenerate: flush after every block
	}
	return &spanBuffer{rr: rr, fw: fw, cap: capBytes}
}

func (sb *spanBuffer) add(ds int, off int64, data []byte) error {
	if sb.blocks > 0 {
		end := sb.start + int64(len(sb.buf))
		gap := off - end
		if ds != sb.ds || gap < 0 || gap > int64(sb.cap) ||
			len(sb.buf)+int(gap)+len(data) > 2*sb.cap {
			if err := sb.flush(); err != nil {
				return err
			}
		}
	}
	if sb.blocks == 0 {
		sb.ds = ds
		sb.start = off
	}
	pad := int(off - (sb.start + int64(len(sb.buf))))
	for i := 0; i < pad; i++ {
		sb.buf = append(sb.buf, 0)
	}
	sb.buf = append(sb.buf, data...)
	sb.blocks++
	if len(sb.buf) >= sb.cap {
		return sb.flush()
	}
	return nil
}

func (sb *spanBuffer) flush() error {
	if sb.blocks == 0 {
		return nil
	}
	t0 := time.Now()
	if _, err := sb.fw.WriteAtRaw(sb.start, sb.buf); err != nil {
		return err
	}
	sb.rr.ioP.Observe(int64(len(sb.buf)), time.Since(t0).Seconds())
	sb.rr.stats.mu.Lock()
	sb.rr.stats.writtenBytes += int64(len(sb.buf))
	sb.rr.stats.mu.Unlock()
	sb.buf = sb.buf[:0]
	sb.blocks = 0
	return nil
}

// writeTask builds the background-thread closure for one write: shared-file
// blocks enter the compressed data buffer (coalesced, paced writes);
// multi-file blocks carry their own append closure.
func (rr *rankRun) writeTask(sb *spanBuffer, res *blockResult) func() error {
	return func() error {
		if res.write != nil {
			return res.write()
		}
		return sb.add(res.ds, res.off, res.data)
	}
}

// blockPredKey keys the ratio predictor per (field, block).
func (rr *rankRun) blockPredKey(fi, bi int) string {
	return fmt.Sprintf("%s#%d", rr.cfg.Specs[fi].Name, bi)
}

// finalDump writes the last iteration's data synchronously after the run
// (its cost appears in Total, not in the steady-state iteration times).
func (rr *rankRun) finalDump(pending *pendingDump) error {
	if pending == nil {
		return nil
	}
	var sn *snap
	if rr.rank() == 0 {
		name := fmt.Sprintf("%s-%s-final.%s", rr.cfg.Name, rr.cfg.Mode, rr.cfg.backend())
		s, err := createSnap(rr.fs, rr.cfg.backend(), name, rr.cfg.Ranks)
		if err != nil {
			return err
		}
		sn = s
	}
	v, err := rr.c.Bcast(0, sn)
	if err != nil {
		return err
	}
	sn = v.(*snap)

	if rr.cfg.Mode == AsyncIO {
		for fi := range rr.cfg.Specs {
			raw := rawChunk(pending.data[fi])
			dw, err := sn.createRawDataset(rr, fi, pending.iter, int64(len(raw)))
			if err != nil {
				return err
			}
			if _, err := dw.WriteChunk(0, raw); err != nil {
				return err
			}
		}
	} else {
		plan, err := rr.planDump(sn, pending)
		if err != nil {
			return err
		}
		sb := newSpanBuffer(rr, sn.fw, rr.cfg.BufferBytes)
		for _, j := range plan.jobs {
			if j.origin != rr.rank() {
				continue
			}
			if err := rr.compressTask(plan, j, pending)(); err != nil {
				return err
			}
			res := rr.store.entry(blockKey{rr.rank(), j.chunk})
			if err := rr.writeTask(sb, res)(); err != nil {
				return err
			}
		}
		if err := sb.flush(); err != nil {
			return err
		}
	}
	rr.c.Barrier()
	if rr.rank() == 0 {
		if _, err := sn.close(); err != nil {
			return err
		}
	}
	rr.store.reset()
	rr.c.Barrier()
	return nil
}
