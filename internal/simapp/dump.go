package simapp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/huffman"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/sz"
)

// defaultCompThroughput seeds the compression-time predictor before any
// observation exists (conservative Go-SZ single-core figure).
const defaultCompThroughput = 40 << 20 // bytes/s

// dumpPlan is everything iterOurs needs to execute one dump: this rank's
// slice of the node's shared iteration plan plus the per-field dataset
// writers and compression parameters. Chunk numbers (plan job IDs) encode
// (field, block) as fi*nb + bi.
type dumpPlan struct {
	rp  plan.RankPlan
	dsw []storage.DatasetWriter // per field
	eb  []float64               // per field error bound
	nb  int                     // blocks per field
}

func (dp *dumpPlan) field(chunk int) int { return chunk / dp.nb }
func (dp *dumpPlan) block(chunk int) int { return chunk % dp.nb }

// profile returns the static busy-interval profile in seconds, which in
// this mini-app is exactly the previous iteration's profile (segments are
// at fixed offsets, the paper's iteration-similarity assumption made
// literal).
func (rr *rankRun) profile() (comp, io []sched.Interval, horizon float64) {
	for _, s := range rr.mainSegs {
		comp = append(comp, sched.Interval{Start: s.start.Seconds(), End: (s.start + s.dur).Seconds()})
	}
	for _, s := range rr.bgSegs {
		io = append(io, sched.Interval{Start: s.start.Seconds(), End: (s.start + s.dur).Seconds()})
	}
	return comp, io, rr.span.Seconds()
}

// maintainTree returns the shared Huffman tree for a field, building (or
// rebuilding after TreeRebuild dumps) from the pending data's quantization
// codes, and persists it into the snapshot so readers can decode.
func (rr *rankRun) maintainTree(sn storage.Snapshot, fi int, data []float32) (*huffman.Tree, error) {
	if rr.cfg.TreeRebuild <= 0 {
		return nil, nil // sharing disabled: every block embeds its own tree
	}
	tree := rr.trees[fi]
	if tree == nil || rr.treeAge[fi] >= rr.cfg.TreeRebuild {
		// Build from the first block's codes — cheap and representative.
		blk := rr.splits[0]
		codes, _, err := sz.Quantize(blk.Slice(data, rr.cfg.Dims), blk.Dims, sz.Options{
			ErrorBound: rr.cfg.Specs[fi].ErrorBound,
			Radius:     rr.cfg.Radius,
		})
		if err != nil {
			return nil, err
		}
		tree, err = sz.BuildTree(huffman.Histogram(2*rr.cfg.Radius, codes))
		if err != nil {
			return nil, err
		}
		rr.trees[fi] = tree
		rr.treeAge[fi] = 0
	}
	rr.treeAge[fi]++
	// Persist the tree for this snapshot's readers.
	if err := rr.persistBlob(sn, rr.treeName(fi), tree.Marshal()); err != nil {
		return nil, err
	}
	return tree, nil
}

// PlanNode runs the shared planner (internal/plan) exactly the way each node
// root does at runtime: one call over the node's ranks, with BaseRank
// translating node-local indices to global ones. Exported so the
// engine-parity test can compare this against core's whole-world planning.
// rec (may be nil) receives the planner's solve-cache counters.
func PlanNode(ranks []plan.RankInput, alg sched.Algorithm, balance bool, baseRank int, rec *obs.Recorder) (*plan.IterationPlan, error) {
	return plan.Plan(plan.Input{Ranks: ranks}, plan.Config{
		Algorithm: alg,
		Balance:   balance,
		BaseRank:  baseRank,
		Rec:       rec,
	})
}

// planDump predicts, registers datasets (reserving extents where the
// backend supports it), and runs the shared planner across the node: inputs
// are gathered on the node root, planned in one internal/plan call, and the
// resulting IterationPlan broadcast back.
func (rr *rankRun) planDump(sn storage.Snapshot, pending *pendingDump) (*dumpPlan, error) {
	cfg := rr.cfg
	nb := len(rr.splits)
	dp := &dumpPlan{
		dsw: make([]storage.DatasetWriter, len(cfg.Specs)),
		eb:  make([]float64, len(cfg.Specs)),
		nb:  nb,
	}

	compHoles, ioHoles, horizon := rr.profile()
	ri := plan.RankInput{CompHoles: compHoles, IOHoles: ioHoles, Horizon: horizon}
	for fi, spec := range cfg.Specs {
		dp.eb[fi] = spec.ErrorBound
		if _, err := rr.maintainTree(sn, fi, pending.data[fi]); err != nil {
			return nil, err
		}
		var reservations, rawSizes []int64
		for bi, blk := range rr.splits {
			raw := int64(4 * blk.Dims.N())
			key := rr.blockPredKey(fi, bi)
			ratio := rr.ratioP.Predict(key, 8)
			predBytes := int64(float64(raw) / ratio)
			reserve := predBytes + 64
			reservations = append(reservations, reserve+reserve/5+512) // 20% safety
			rawSizes = append(rawSizes, raw)
			ri.Jobs = append(ri.Jobs, plan.Job{
				ID:        fi*nb + bi,
				PredComp:  rr.compP.PredictDuration(raw, float64(raw)/defaultCompThroughput),
				PredIO:    rr.ioP.PredictDuration(predBytes, rr.fs.ModelDuration(predBytes).Seconds()),
				PredBytes: predBytes,
			})
		}
		attrs := map[string]string{
			"field":      spec.Name,
			"iter":       fmt.Sprint(pending.iter),
			"errorBound": fmt.Sprint(spec.ErrorBound),
			"radius":     fmt.Sprint(cfg.Radius),
		}
		if cfg.TreeRebuild > 0 {
			attrs["tree"] = rr.treeName(fi)
		}
		dw, err := sn.CreateDataset(storage.DatasetSpec{
			Rank:         rr.rank(),
			Name:         rr.dsName(fi),
			Dims:         []int{cfg.Dims.X, cfg.Dims.Y, cfg.Dims.Z},
			ElemSize:     4,
			Compressed:   true,
			Reservations: reservations,
			RawSizes:     rawSizes,
			Attrs:        attrs,
		})
		if err != nil {
			return nil, err
		}
		dp.dsw[fi] = dw
		// A degraded chunk achieved ratio 1.0: feed that outcome back so the
		// next iteration reserves for what the write actually was (§4.4).
		fi := fi
		rr.router.register(rr.dsName(fi), func(chunk int, rawBytes int64) {
			rr.ratioP.Observe(rr.blockPredKey(fi, chunk), 1.0)
		})
	}

	// Node-wide planning: gather every rank's input on the node root, plan
	// once, broadcast the shared IterationPlan.
	gathered, err := rr.c.NodeGather(ri)
	if err != nil {
		return nil, err
	}
	var p *plan.IterationPlan
	if gathered != nil { // node root
		inputs := make([]plan.RankInput, len(gathered))
		for li, v := range gathered {
			inputs[li] = v.(plan.RankInput)
		}
		p, err = PlanNode(inputs, cfg.Algorithm, cfg.Balance, rr.c.NodeRanks()[0], rr.rec())
		if err != nil {
			return nil, err
		}
	}
	v, err := rr.c.NodeBcast(p)
	if err != nil {
		return nil, err
	}
	dp.rp = v.(*plan.IterationPlan).Ranks[rr.c.NodeRank()]
	return dp, nil
}

// observeWrite feeds completed storage writes back into this rank's I/O
// predictor and the run counters.
func (rr *rankRun) observeWrite(bytes int64, seconds float64) {
	rr.ioP.Observe(bytes, seconds)
	rr.stats.mu.Lock()
	rr.stats.writtenBytes += bytes
	rr.stats.mu.Unlock()
}

// iterOurs executes one iteration with the full in situ pipeline.
func (rr *rankRun) iterOurs(start time.Time, sn storage.Snapshot, pending *pendingDump) error {
	if pending == nil {
		return rr.iterComputeOnly(start)
	}
	dp, err := rr.planDump(sn, pending)
	if err != nil {
		return err
	}
	if rr.rec().Enabled() {
		rr.stats.notePlanned(rr.curIter, dp.rp.Schedule.Overall)
	}

	// Compression tasks (main thread) in scheduled order.
	var compTasks []wtask
	for _, id := range dp.rp.CompOrder() {
		pj := dp.rp.Jobs[id]
		if pj.Origin.Rank != rr.rank() {
			continue // moved-in writes have no compression here
		}
		compTasks = append(compTasks, wtask{
			id:   id,
			pred: time.Duration(pj.PredComp * float64(time.Second)),
			run:  rr.compressTask(dp, pj.Origin.ID, pending),
		})
	}

	// Write tasks (background thread) in scheduled order, through the
	// backend's chunk sink (coalescing where the format supports it).
	sink := sn.NewChunkSink(rr.cfg.BufferBytes, rr.observeWrite)
	var ioTasks []wtask
	for _, id := range dp.rp.IOOrder() {
		pj := dp.rp.Jobs[id]
		if pj.PredIO <= 0 {
			continue // write moved to a sibling rank
		}
		res := rr.store.entry(blockKey{pj.Origin.Rank, pj.Origin.ID})
		label := fmt.Sprintf("write c%d", pj.Origin.ID)
		if pj.Origin.Rank != rr.rank() {
			label = fmt.Sprintf("write c%d (from rank %d)", pj.Origin.ID, pj.Origin.Rank)
		}
		ioTasks = append(ioTasks, wtask{
			id:    id,
			pred:  time.Duration(pj.PredIO * float64(time.Second)),
			ready: res.done,
			run:   func() error { return sink.Write(res.staged) },
			label: label,
			cat:   "write",
		})
	}
	if len(ioTasks) > 0 {
		ioTasks = append(ioTasks, wtask{id: -1, run: sink.Flush, label: "buffer flush", cat: "write"})
	}

	done := make(chan error, 1)
	go func() { done <- runThreadObs(rr.rec(), rr.rank(), obs.ThreadIO, start, rr.bgSegs, ioTasks) }()
	if err := runThreadObs(rr.rec(), rr.rank(), obs.ThreadMain, start, rr.mainSegs, compTasks); err != nil {
		<-done
		return err
	}
	return <-done
}

// compressTask builds the main-thread closure for one chunk: compress the
// block, observe the predictors, and stage the chunk with the backend so
// whichever rank owns the write can execute it.
func (rr *rankRun) compressTask(dp *dumpPlan, chunk int, pending *pendingDump) func() error {
	return func() error {
		fi, bi := dp.field(chunk), dp.block(chunk)
		blk := rr.splits[bi]
		slice := blk.Slice(pending.data[fi], rr.cfg.Dims)
		raw := int64(4 * blk.Dims.N())
		t0 := time.Now()
		blob, st, err := sz.Compress(slice, blk.Dims, sz.Options{
			ErrorBound: dp.eb[fi],
			Radius:     rr.cfg.Radius,
			Tree:       rr.trees[fi], // nil when sharing disabled
			Scratch:    rr.scratch,   // main-thread tasks run sequentially
			Rec:        rr.rec(),
			Rank:       rr.rank(),
			Block:      chunk,
		})
		if err != nil {
			return err
		}
		rr.compP.Observe(raw, time.Since(t0).Seconds())
		rr.ratioP.Observe(rr.blockPredKey(fi, bi), st.Ratio)

		// The raw fallback lets the recovery layer reroute this block
		// uncompressed if its compressed bytes exhaust their retries.
		staged, err := storage.StageChunk(dp.dsw[fi], bi, blob,
			func() []byte { return rawChunk(slice) })
		if err != nil {
			return err
		}
		res := rr.store.entry(blockKey{rr.rank(), chunk})
		res.staged = staged
		close(res.done)

		rr.stats.mu.Lock()
		rr.stats.rawBytes += raw
		rr.stats.ratioSum += st.Ratio
		rr.stats.ratioN++
		rr.stats.escaped += int64(st.Escaped)
		rr.stats.points += int64(blk.Dims.N())
		rr.stats.mu.Unlock()
		return nil
	}
}

// blockPredKey keys the ratio predictor per (field, block).
func (rr *rankRun) blockPredKey(fi, bi int) string {
	return fmt.Sprintf("%s#%d", rr.cfg.Specs[fi].Name, bi)
}

// finalDump writes the last iteration's data synchronously after the run
// (its cost appears in Total, not in the steady-state iteration times).
func (rr *rankRun) finalDump(pending *pendingDump) error {
	if pending == nil {
		return nil
	}
	var sn storage.Snapshot
	if rr.rank() == 0 {
		name := fmt.Sprintf("%s-%s-final.%s", rr.cfg.Name, rr.cfg.Mode, rr.cfg.backend())
		s, err := rr.backend.Create(rr.fs, name, rr.cfg.Ranks)
		if err != nil {
			return err
		}
		sn = rr.armSnapshot(s)
	}
	v, err := rr.c.Bcast(0, sn)
	if err != nil {
		return err
	}
	sn = v.(storage.Snapshot)

	if rr.cfg.Mode == AsyncIO {
		for fi := range rr.cfg.Specs {
			raw := rawChunk(pending.data[fi])
			dw, err := rr.createRawDataset(sn, fi, pending.iter, int64(len(raw)))
			if err != nil {
				return err
			}
			if _, err := dw.WriteChunk(0, raw); err != nil {
				return err
			}
		}
	} else {
		dp, err := rr.planDump(sn, pending)
		if err != nil {
			return err
		}
		// The final dump has no computation to hide behind, so each rank
		// compresses its own blocks on the worker pool (per-field, order-
		// preserving — the file bytes match the serial path exactly) and
		// writes them synchronously in block order.
		sink := sn.NewChunkSink(rr.cfg.BufferBytes, rr.observeWrite)
		for fi := range rr.cfg.Specs {
			blobs, sts, err := sz.CompressBlocks(context.Background(),
				pending.data[fi], rr.cfg.Dims, rr.splits, sz.Options{
					ErrorBound: dp.eb[fi],
					Radius:     rr.cfg.Radius,
					Tree:       rr.trees[fi], // nil when sharing disabled
					Rec:        rr.rec(),
					Rank:       rr.rank(),
					Block:      fi * dp.nb,
				}, 0)
			if err != nil {
				return err
			}
			for bi, blob := range blobs {
				rr.ratioP.Observe(rr.blockPredKey(fi, bi), sts[bi].Ratio)
				slice := rr.splits[bi].Slice(pending.data[fi], rr.cfg.Dims)
				staged, err := storage.StageChunk(dp.dsw[fi], bi, blob,
					func() []byte { return rawChunk(slice) })
				if err != nil {
					return err
				}
				if err := sink.Write(staged); err != nil {
					return err
				}
				rr.stats.mu.Lock()
				rr.stats.rawBytes += int64(sts[bi].RawBytes)
				rr.stats.ratioSum += sts[bi].Ratio
				rr.stats.ratioN++
				rr.stats.escaped += int64(sts[bi].Escaped)
				rr.stats.points += int64(rr.splits[bi].Dims.N())
				rr.stats.mu.Unlock()
			}
		}
		if err := sink.Flush(); err != nil {
			return err
		}
	}
	rr.c.Barrier()
	if rr.rank() == 0 {
		if _, err := sn.Close(); err != nil {
			return err
		}
	}
	rr.store.reset()
	rr.c.Barrier()
	return nil
}
