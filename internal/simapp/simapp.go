// Package simapp runs mini-Nyx and mini-WarpX: iterative applications that
// really generate data (internal/fields), really compress it
// (internal/sz, shared Huffman trees), and really write it through the H5L
// container (internal/h5) onto the paced parallel file system
// (internal/pfs), with ranks as goroutines (internal/mpi). It is the
// wall-clock counterpart of internal/core's virtual-time engine and drives
// the "real-system-based evaluation" of §5.4.2 (Figs. 9–11), scaled down to
// a laptop-class machine the way the paper's artifact scales down to a
// Chameleon node.
//
// The computation a GPU would do is represented by sleeps (the CPU is idle
// while the GPU computes — precisely the idle time the paper harvests);
// compression is real CPU work; writes are really paced by the modelled
// file-system bandwidth.
package simapp

import (
	"fmt"
	"time"

	"repro/internal/fields"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/sz"
)

// Mode selects the I/O strategy for a wall-clock run.
type Mode int

// Wall-clock run modes. ComputeOnly is the paper's reference measurement
// ("overhead compared to computation only" in the artifact).
const (
	ComputeOnly Mode = iota
	Baseline
	AsyncIO
	Ours
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ComputeOnly:
		return "compute-only"
	case Baseline:
		return "baseline"
	case AsyncIO:
		return "async-io"
	case Ours:
		return "ours"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes one wall-clock run.
type Config struct {
	Name         string // file name prefix ("nyx", "warpx")
	Ranks        int
	RanksPerNode int

	Dims  sz.Dims // per-rank partition
	Specs []fields.FieldSpec
	Stage fields.Stage
	Seed  int64

	Iterations int

	// ComputeTime is the total main-thread busy time per iteration, split
	// into ComputeSegments fixed-position intervals. CommTime/CommSegments
	// shape the background thread's core tasks likewise.
	ComputeTime     time.Duration
	ComputeSegments int
	CommTime        time.Duration
	CommSegments    int

	BlockBytes  int // fine-grained compression block target (§4.1)
	BufferBytes int // compressed data buffer capacity (§4.2)
	Radius      int // quantization radius (alphabet = 2*Radius)
	// TreeRebuild is how many dumps a shared Huffman tree serves before it
	// is rebuilt (§4.3; Fig. 6 suggests ~10). 0 disables sharing.
	TreeRebuild int

	Algorithm sched.Algorithm
	Balance   bool

	FS   pfs.Config
	Mode Mode
	// Retry is the write retry policy the storage recovery layer uses when
	// the file system injects faults (FS.Faults); nil selects
	// storage.DefaultRetryPolicy(). Recovery is always armed — without
	// faults it never engages.
	Retry *storage.RetryPolicy
	// Backend selects the container: BackendH5L (shared file, reserved
	// extents — the paper's HDF5 setting) or BackendBP (multi-file,
	// ADIOS-style — the paper's §6 future work). Empty means BackendH5L.
	Backend string

	// Recorder, when non-nil, captures wall-clock spans (compute/core-task
	// obstacles, per-block compressions with ratios, buffered writes, paced
	// storage writes) plus counters and per-iteration planned-vs-actual
	// makespans. Nil disables instrumentation at zero cost.
	Recorder *obs.Recorder
}

// Nyx returns a laptop-scale mini-Nyx configuration with `ranks` ranks.
func Nyx(ranks int, mode Mode) Config {
	return Config{
		Name:            "nyx",
		Ranks:           ranks,
		RanksPerNode:    min(ranks, 4),
		Dims:            sz.Dims{X: 32, Y: 32, Z: 32},
		Specs:           fields.NyxFields,
		Stage:           fields.StageStructured,
		Seed:            1,
		Iterations:      4,
		ComputeTime:     220 * time.Millisecond,
		ComputeSegments: 3,
		CommTime:        264 * time.Millisecond, // 60% of the nominal span
		CommSegments:    2,
		BlockBytes:      128 << 10,
		BufferBytes:     256 << 10,
		Radius:          1024,
		TreeRebuild:     10,
		Algorithm:       sched.ExtJohnsonBF,
		Balance:         true,
		FS:              laptopFS(ranks),
		Mode:            mode,
	}
}

// WarpX returns a laptop-scale mini-WarpX configuration.
func WarpX(ranks int, mode Mode) Config {
	cfg := Nyx(ranks, mode)
	cfg.Name = "warpx"
	cfg.Dims = sz.Dims{X: 32, Y: 32, Z: 64}
	cfg.Specs = fields.WarpXFields
	cfg.Stage = fields.StageEven
	cfg.Seed = 2
	cfg.ComputeTime = 160 * time.Millisecond
	cfg.CommTime = 192 * time.Millisecond // 60% of the nominal span
	return cfg
}

// laptopFS scales file-system bandwidth so a raw dump costs a meaningful
// fraction of an iteration (the regime where the paper's comparison is
// interesting): the same dump:iteration proportions as Summit's 2 TB/s vs
// terabyte-scale snapshots. The target count is FIXED, like a production
// file system: weak scaling shrinks every rank's share (Fig. 11's effect).
func laptopFS(ranks int) pfs.Config {
	_ = ranks
	return pfs.Config{
		OSTs:            4,
		StripeBytes:     32 << 10,
		PerOSTBandwidth: 3 << 20,
		Latency:         200 * time.Microsecond,
		SmallIOBytes:    2 << 10,
	}
}

func (c Config) validate() error {
	if c.Ranks < 1 || c.RanksPerNode < 1 || c.Ranks%c.RanksPerNode != 0 {
		return fmt.Errorf("simapp: bad rank layout %d/%d", c.Ranks, c.RanksPerNode)
	}
	if c.Dims.N() <= 0 || len(c.Specs) == 0 {
		return fmt.Errorf("simapp: empty problem")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("simapp: iterations %d < 1", c.Iterations)
	}
	if c.ComputeSegments < 1 || c.ComputeTime <= 0 {
		return fmt.Errorf("simapp: invalid compute shape")
	}
	if c.BlockBytes <= 0 {
		return fmt.Errorf("simapp: block bytes %d <= 0", c.BlockBytes)
	}
	if c.Radius < 2 {
		return fmt.Errorf("simapp: radius %d", c.Radius)
	}
	if _, err := c.storageBackend(); err != nil {
		return fmt.Errorf("simapp: %w", err)
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Mode          Mode
	Iterations    int
	Total         time.Duration   // whole-run wall time
	PerIteration  []time.Duration // each iteration's wall time (max across ranks)
	MeanIteration time.Duration

	// Data statistics (zero for ComputeOnly).
	RawBytes        int64
	WrittenBytes    int64
	MeanRatio       float64 // raw/compressed (Ours only)
	OverflowChunks  int     // mispredicted reservations (Ours only)
	EscapedFraction float64 // shared-tree escapes / total points (Ours only)
	Files           []string

	// Failure-path statistics (all zero when FS.Faults is nil).
	InjectedFaults int64 // write faults the file system injected
	RetryAttempts  int64 // storage-layer retries across all writes
	DegradedChunks int   // chunks rerouted uncompressed after exhausted retries
	DegradedBytes  int64 // raw bytes those chunks wrote
}

// Overhead computes (run - reference) / reference given a compute-only
// reference measurement.
func (r *Result) Overhead(ref *Result) float64 {
	if ref == nil || ref.MeanIteration <= 0 {
		return 0
	}
	d := r.MeanIteration - ref.MeanIteration
	if d < 0 {
		return 0
	}
	return float64(d) / float64(ref.MeanIteration)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
