package simapp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/fields"
	"repro/internal/huffman"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/predict"
	"repro/internal/storage"
	"repro/internal/sz"
)

// blockKey identifies one compressed block within a node.
type blockKey struct {
	rank  int // global rank
	chunk int // field*nBlocks + block
}

// blockResult is a compressed block awaiting its write, shared through the
// node store so balancing can move the write to a sibling rank: the origin
// rank stages the chunk with the storage backend, and whichever rank owns
// the write feeds it to its chunk sink.
type blockResult struct {
	done   chan struct{}
	staged storage.StagedChunk
}

// nodeStore shares blockResults between the ranks of one node.
type nodeStore struct {
	mu sync.Mutex
	m  map[blockKey]*blockResult
}

func newNodeStore() *nodeStore { return &nodeStore{m: make(map[blockKey]*blockResult)} }

func (ns *nodeStore) entry(k blockKey) *blockResult {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	r, ok := ns.m[k]
	if !ok {
		r = &blockResult{done: make(chan struct{})}
		ns.m[k] = r
	}
	return r
}

func (ns *nodeStore) reset() {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.m = make(map[blockKey]*blockResult)
}

// runStats aggregates across ranks.
type runStats struct {
	mu           sync.Mutex
	rawBytes     int64
	writtenBytes int64
	ratioSum     float64
	ratioN       int
	overflow     int
	escaped      int64
	points       int64
	iterEnd      [][]time.Duration // [iteration][rank]
	planned      []float64         // per-iteration planned makespan (max across ranks)
	files        []string
}

// notePlanned records one rank's planned makespan for iteration it; the
// per-iteration maximum is the run's predicted duration (Table 1 semantics).
func (st *runStats) notePlanned(it int, overall float64) {
	st.mu.Lock()
	if overall > st.planned[it] {
		st.planned[it] = overall
	}
	st.mu.Unlock()
}

// Run executes the configured application and returns aggregate results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fs, err := pfs.New(cfg.FS)
	if err != nil {
		return nil, err
	}
	return RunOn(cfg, fs)
}

// RunOn executes against a caller-provided file system (so tests and the
// bench harness can inspect the written files afterwards).
func RunOn(cfg Config, fs *pfs.FS) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	world, err := mpi.NewWorldWithNodes(cfg.Ranks, cfg.RanksPerNode)
	if err != nil {
		return nil, err
	}
	backend, err := cfg.storageBackend()
	if err != nil {
		return nil, err
	}
	gen, err := fields.NewGenerator(fields.Config{
		Dims: cfg.Dims, Fields: cfg.Specs, Ranks: cfg.Ranks,
		Seed: cfg.Seed, Stage: cfg.Stage,
	})
	if err != nil {
		return nil, err
	}
	splits, err := sz.Split(cfg.Dims, cfg.BlockBytes)
	if err != nil {
		return nil, err
	}

	span := 2 * cfg.ComputeTime // nominal iteration length: 50% main idle
	mainSegs := layoutSegments(span, cfg.ComputeTime, cfg.ComputeSegments)
	bgSegs := layoutSegments(span, cfg.CommTime, cfg.CommSegments)

	stats := &runStats{
		iterEnd: make([][]time.Duration, cfg.Iterations),
		planned: make([]float64, cfg.Iterations),
	}
	for i := range stats.iterEnd {
		stats.iterEnd[i] = make([]time.Duration, cfg.Ranks)
	}
	if cfg.Recorder != nil {
		fs.SetRecorder(cfg.Recorder)
	}
	stores := make([]*nodeStore, world.Nodes())
	for i := range stores {
		stores[i] = newNodeStore()
	}
	retry := cfg.Retry
	if retry == nil {
		retry = storage.DefaultRetryPolicy()
	}
	router := newDegradeRouter()

	startAll := time.Now()
	err = world.Run(func(c *mpi.Comm) error {
		rr := &rankRun{
			cfg: cfg, c: c, fs: fs, gen: gen, splits: splits,
			mainSegs: mainSegs, bgSegs: bgSegs, span: span,
			backend: backend,
			store:   stores[c.Node()],
			stats:   stats,
			retry:   retry,
			router:  router,
			ratioP:  predict.NewRatioPredictor(0.6),
			compP:   predict.NewThroughputPredictor(0.6),
			ioP:     predict.NewIOPredictor(0.6),
			trees:   make(map[int]*huffman.Tree),
			treeAge: make(map[int]int),
			scratch: new(sz.Scratch),
		}
		return rr.run()
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Mode:       cfg.Mode,
		Iterations: cfg.Iterations,
		Total:      time.Since(startAll),
	}
	stats.mu.Lock()
	defer stats.mu.Unlock()
	var sum time.Duration
	for it, perRank := range stats.iterEnd {
		iterMax := time.Duration(0)
		for _, d := range perRank {
			if d > iterMax {
				iterMax = d
			}
		}
		res.PerIteration = append(res.PerIteration, iterMax)
		sum += iterMax
		if cfg.Recorder.Enabled() {
			cfg.Recorder.Iteration(obs.IterationStat{
				Mode:    cfg.Mode.String(),
				Planned: stats.planned[it],
				Actual:  iterMax.Seconds(),
			})
		}
	}
	res.MeanIteration = sum / time.Duration(len(res.PerIteration))
	res.RawBytes = stats.rawBytes
	res.WrittenBytes = stats.writtenBytes
	if stats.ratioN > 0 {
		res.MeanRatio = stats.ratioSum / float64(stats.ratioN)
	}
	res.OverflowChunks = stats.overflow
	if stats.points > 0 {
		res.EscapedFraction = float64(stats.escaped) / float64(stats.points)
	}
	res.Files = append(res.Files, stats.files...)
	_, res.InjectedFaults = fs.FaultStats()
	res.RetryAttempts = retry.Attempts()
	res.DegradedChunks, res.DegradedBytes = router.totals()
	return res, nil
}

// pendingDump holds one iteration's generated data awaiting its dump.
type pendingDump struct {
	iter int
	data [][]float32 // per field
}

// rankRun is one rank's execution state.
type rankRun struct {
	cfg      Config
	c        *mpi.Comm
	fs       *pfs.FS
	gen      *fields.Generator
	splits   []sz.Block
	mainSegs []segment
	bgSegs   []segment
	span     time.Duration
	backend  storage.Backend
	store    *nodeStore
	stats    *runStats
	retry    *storage.RetryPolicy
	router   *degradeRouter

	ratioP *predict.RatioPredictor
	compP  *predict.ThroughputPredictor
	ioP    *predict.IOPredictor

	trees   map[int]*huffman.Tree // per field index
	treeAge map[int]int

	// scratch backs this rank's sequential (main-thread) Compress calls for
	// the whole run; finalDump's parallel workers draw pooled scratches of
	// their own instead.
	scratch *sz.Scratch

	curIter int // execution iteration, for attributing planned makespans
}

func (rr *rankRun) rank() int { return rr.c.Rank() }

func (rr *rankRun) rec() *obs.Recorder { return rr.cfg.Recorder }

func (rr *rankRun) generate(iter int) *pendingDump {
	pd := &pendingDump{iter: iter}
	for _, spec := range rr.cfg.Specs {
		pd.data = append(pd.data, rr.gen.Field(rr.rank(), spec, iter))
	}
	return pd
}

func (rr *rankRun) run() error {
	var pending *pendingDump
	for iter := 0; iter < rr.cfg.Iterations; iter++ {
		data := rr.generate(iter) // untimed: data synthesis artifact

		// Coordinate the snapshot file for whatever this iteration dumps.
		var sn storage.Snapshot
		dumpIter := -1
		switch rr.cfg.Mode {
		case Baseline:
			dumpIter = iter // dumped synchronously at iteration end
		case AsyncIO, Ours:
			if pending != nil {
				dumpIter = pending.iter
			}
		}
		if dumpIter >= 0 {
			if rr.rank() == 0 {
				name := fmt.Sprintf("%s-%s-%04d.%s", rr.cfg.Name, rr.cfg.Mode, dumpIter, rr.cfg.backend())
				s, err := rr.backend.Create(rr.fs, name, rr.cfg.Ranks)
				if err != nil {
					return err
				}
				sn = rr.armSnapshot(s)
			}
			v, err := rr.c.Bcast(0, sn)
			if err != nil {
				return err
			}
			sn = v.(storage.Snapshot)
		}
		rr.c.Barrier()
		rr.curIter = iter
		iterStart := time.Now()

		var err error
		switch rr.cfg.Mode {
		case ComputeOnly:
			err = rr.iterComputeOnly(iterStart)
		case Baseline:
			err = rr.iterBaseline(iterStart, sn, data)
		case AsyncIO:
			err = rr.iterAsyncIO(iterStart, sn, pending)
		case Ours:
			err = rr.iterOurs(iterStart, sn, pending)
		default:
			err = fmt.Errorf("simapp: unknown mode %d", rr.cfg.Mode)
		}
		if err != nil {
			return err
		}
		end := time.Since(iterStart)
		rr.stats.mu.Lock()
		rr.stats.iterEnd[iter][rr.rank()] = end
		rr.stats.mu.Unlock()

		rr.c.Barrier()
		if sn != nil {
			if rr.rank() == 0 {
				oc, err := sn.Close()
				if err != nil {
					return err
				}
				rr.stats.mu.Lock()
				rr.stats.overflow += oc
				rr.stats.files = append(rr.stats.files, sn.Name())
				rr.stats.mu.Unlock()
			}
			rr.store.reset()
			rr.c.Barrier()
		}
		pending = data
	}

	// Final pending dump (Ours/AsyncIO): synchronous, counted in Total only.
	if rr.cfg.Mode == Ours || rr.cfg.Mode == AsyncIO {
		if err := rr.finalDump(pending); err != nil {
			return err
		}
	}
	return nil
}

func (rr *rankRun) iterComputeOnly(start time.Time) error {
	done := make(chan error, 1)
	go func() { done <- runThreadObs(rr.rec(), rr.rank(), obs.ThreadIO, start, rr.bgSegs, nil) }()
	if err := runThreadObs(rr.rec(), rr.rank(), obs.ThreadMain, start, rr.mainSegs, nil); err != nil {
		return err
	}
	return <-done
}

// rawChunk converts a float32 field to bytes for uncompressed writes.
func rawChunk(data []float32) []byte {
	out := make([]byte, 4*len(data))
	for i, v := range data {
		u := f32bits(v)
		out[4*i] = byte(u >> 24)
		out[4*i+1] = byte(u >> 16)
		out[4*i+2] = byte(u >> 8)
		out[4*i+3] = byte(u)
	}
	return out
}

// rawFloats is rawChunk's inverse, for reading degraded (uncompressed)
// chunks back out of an otherwise-compressed dataset.
func rawFloats(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		u := uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 |
			uint32(b[4*i+2])<<8 | uint32(b[4*i+3])
		out[i] = math.Float32frombits(u)
	}
	return out
}

// iterBaseline: compute, then a synchronous uncompressed dump.
func (rr *rankRun) iterBaseline(start time.Time, sn storage.Snapshot, data *pendingDump) error {
	if err := rr.iterComputeOnly(start); err != nil {
		return err
	}
	for fi := range rr.cfg.Specs {
		raw := rawChunk(data.data[fi])
		dw, err := rr.createRawDataset(sn, fi, data.iter, int64(len(raw)))
		if err != nil {
			return err
		}
		t0 := rr.rec().Now()
		if _, err := dw.WriteChunk(0, raw); err != nil {
			return err
		}
		if rr.rec().Enabled() {
			rr.rec().WallSpan(obs.Span{
				Name: fmt.Sprintf("dump field %d raw", fi), Cat: "write",
				Rank: rr.rank(), Thread: obs.ThreadMain,
				Block: obs.NoBlock, Bytes: int64(len(raw)),
			}, t0, rr.rec().Now())
		}
		rr.note(int64(len(raw)), int64(len(raw)))
	}
	return nil
}

// iterAsyncIO: compute while the background thread writes the previous
// iteration's raw data between its core tasks [62].
func (rr *rankRun) iterAsyncIO(start time.Time, sn storage.Snapshot, pending *pendingDump) error {
	var tasks []wtask
	if pending != nil {
		for fi := range rr.cfg.Specs {
			raw := rawChunk(pending.data[fi])
			dw, err := rr.createRawDataset(sn, fi, pending.iter, int64(len(raw)))
			if err != nil {
				return err
			}
			tasks = append(tasks, wtask{
				id:    fi,
				pred:  rr.fs.ModelDuration(int64(len(raw))),
				label: fmt.Sprintf("write field %d raw", fi),
				cat:   "write",
				run: func() error {
					_, err := dw.WriteChunk(0, raw)
					rr.note(int64(len(raw)), int64(len(raw)))
					return err
				},
			})
		}
	}
	done := make(chan error, 1)
	go func() { done <- runThreadObs(rr.rec(), rr.rank(), obs.ThreadIO, start, rr.bgSegs, tasks) }()
	if err := runThreadObs(rr.rec(), rr.rank(), obs.ThreadMain, start, rr.mainSegs, nil); err != nil {
		return err
	}
	return <-done
}

func (rr *rankRun) dsName(fi int) string {
	return fmt.Sprintf("/rank%03d/%s", rr.rank(), rr.cfg.Specs[fi].Name)
}

func (rr *rankRun) treeName(fi int) string {
	return fmt.Sprintf("/rank%03d/__tree/%s", rr.rank(), rr.cfg.Specs[fi].Name)
}

func (rr *rankRun) note(raw, written int64) {
	rr.stats.mu.Lock()
	rr.stats.rawBytes += raw
	rr.stats.writtenBytes += written
	rr.stats.mu.Unlock()
}

func f32bits(v float32) uint32 { return math.Float32bits(v) }
