//go:build !race

package simapp

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
