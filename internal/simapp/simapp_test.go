package simapp

import (
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/storage"
	"repro/internal/sz"
)

// tinyNyx shrinks everything so a full run takes well under a second.
func tinyNyx(ranks int, mode Mode) Config {
	cfg := Nyx(ranks, mode)
	cfg.Dims = sz.Dims{X: 16, Y: 16, Z: 16}
	cfg.Iterations = 3
	cfg.ComputeTime = 60 * time.Millisecond
	cfg.ComputeSegments = 2
	cfg.CommTime = 16 * time.Millisecond
	cfg.CommSegments = 1
	cfg.BlockBytes = 8 << 10 // 2 blocks of the 16 KiB field
	cfg.BufferBytes = 32 << 10
	cfg.Specs = cfg.Specs[:3]
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := tinyNyx(2, Ours)
	bad.Ranks = 3
	bad.RanksPerNode = 2
	if _, err := Run(bad); err == nil {
		t.Fatal("indivisible layout accepted")
	}
	bad2 := tinyNyx(1, Ours)
	bad2.Iterations = 0
	if _, err := Run(bad2); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad3 := tinyNyx(1, Ours)
	bad3.BlockBytes = 0
	if _, err := Run(bad3); err == nil {
		t.Fatal("zero block bytes accepted")
	}
}

func TestLayoutSegments(t *testing.T) {
	segs := layoutSegments(100*time.Millisecond, 40*time.Millisecond, 2)
	if len(segs) != 2 {
		t.Fatalf("%d segments", len(segs))
	}
	if segs[0].start <= 0 || segs[1].start <= segs[0].start+segs[0].dur {
		t.Fatalf("bad layout: %+v", segs)
	}
	if segs[0].dur != 20*time.Millisecond {
		t.Fatalf("segment dur %v", segs[0].dur)
	}
	if layoutSegments(time.Second, 0, 3) != nil {
		t.Fatal("zero busy should yield no segments")
	}
}

func TestComputeOnlyRun(t *testing.T) {
	cfg := tinyNyx(2, ComputeOnly)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != cfg.Iterations || len(res.PerIteration) != cfg.Iterations {
		t.Fatalf("result shape: %+v", res)
	}
	// Each iteration should be close to the nominal span (2x compute time).
	span := 2 * cfg.ComputeTime
	for i, d := range res.PerIteration {
		if d < cfg.ComputeTime || d > span+60*time.Millisecond {
			t.Fatalf("iteration %d took %v (span %v)", i, d, span)
		}
	}
	if res.RawBytes != 0 || res.WrittenBytes != 0 {
		t.Fatal("compute-only run wrote data")
	}
}

func TestBaselineWritesVerifiableRawData(t *testing.T) {
	cfg := tinyNyx(2, Baseline)
	fs, err := pfs.New(cfg.FS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != cfg.Iterations {
		t.Fatalf("files: %v", res.Files)
	}
	if res.WrittenBytes != res.RawBytes || res.RawBytes == 0 {
		t.Fatalf("baseline bytes: raw %d written %d", res.RawBytes, res.WrittenBytes)
	}
	for _, f := range res.Files {
		if n, err := VerifyRawSnapshot(fs, f, cfg); err != nil {
			t.Fatalf("verify %s (%d checked): %v", f, n, err)
		}
	}
}

func TestAsyncIORun(t *testing.T) {
	cfg := tinyNyx(2, AsyncIO)
	fs, err := pfs.New(cfg.FS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Dumps lag one iteration: iterations-1 in-loop files plus the final.
	if len(res.Files) != cfg.Iterations-1 {
		t.Fatalf("in-loop files: %v", res.Files)
	}
	for _, f := range res.Files {
		if _, err := VerifyRawSnapshot(fs, f, cfg); err != nil {
			t.Fatalf("verify %s: %v", f, err)
		}
	}
	if _, err := VerifyRawSnapshot(fs, "nyx-async-io-final.h5l", cfg); err != nil {
		t.Fatalf("final dump: %v", err)
	}
}

func TestOursEndToEnd(t *testing.T) {
	for _, balance := range []bool{false, true} {
		cfg := tinyNyx(2, Ours)
		cfg.Balance = balance
		fs, err := pfs.New(cfg.FS)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOn(cfg, fs)
		if err != nil {
			t.Fatalf("balance=%v: %v", balance, err)
		}
		if res.MeanRatio < 2 {
			t.Fatalf("balance=%v: mean ratio %.2f too low", balance, res.MeanRatio)
		}
		if res.WrittenBytes >= res.RawBytes {
			t.Fatalf("balance=%v: compression did not shrink: %d -> %d",
				balance, res.RawBytes, res.WrittenBytes)
		}
		for _, f := range res.Files {
			if n, err := VerifySnapshot(fs, f, cfg); err != nil {
				t.Fatalf("balance=%v verify %s (%d checked): %v", balance, f, n, err)
			} else if n == 0 {
				t.Fatalf("balance=%v: snapshot %s empty", balance, f)
			}
		}
		if _, err := VerifySnapshot(fs, "nyx-ours-final.h5l", cfg); err != nil {
			t.Fatalf("balance=%v final: %v", balance, err)
		}
	}
}

func TestOursSingleRank(t *testing.T) {
	cfg := tinyNyx(1, Ours)
	fs, _ := pfs.New(cfg.FS)
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Files {
		if _, err := VerifySnapshot(fs, f, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOursWithoutSharedTree(t *testing.T) {
	cfg := tinyNyx(1, Ours)
	cfg.TreeRebuild = 0 // every block embeds its own tree
	fs, _ := pfs.New(cfg.FS)
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.EscapedFraction != 0 {
		t.Fatalf("own-tree mode escaped %.4f", res.EscapedFraction)
	}
	for _, f := range res.Files {
		if _, err := VerifySnapshot(fs, f, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWarpXConfigRuns(t *testing.T) {
	cfg := WarpX(2, Ours)
	cfg.Dims = sz.Dims{X: 16, Y: 16, Z: 16}
	cfg.Iterations = 2
	cfg.ComputeTime = 50 * time.Millisecond
	cfg.BlockBytes = 8 << 10
	cfg.Specs = cfg.Specs[:2]
	fs, _ := pfs.New(cfg.FS)
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Files {
		if _, err := VerifySnapshot(fs, f, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOverheadComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock compression timings")
	}
	ranks := 2
	run := func(mode Mode) *Result {
		cfg := tinyNyx(ranks, mode)
		cfg.Iterations = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		return res
	}
	ref := run(ComputeOnly)
	base := run(Baseline)
	ours := run(Ours)
	ob := base.Overhead(ref)
	oo := ours.Overhead(ref)
	t.Logf("overheads: baseline=%.3f ours=%.3f (ref iter %v)", ob, oo, ref.MeanIteration)
	if oo >= ob {
		t.Fatalf("ours (%.3f) not better than baseline (%.3f)", oo, ob)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ComputeOnly: "compute-only", Baseline: "baseline", AsyncIO: "async-io", Ours: "ours",
	} {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
}

func TestOursMultiFileBackend(t *testing.T) {
	for _, balance := range []bool{false, true} {
		cfg := tinyNyx(2, Ours)
		cfg.Backend = BackendBP
		cfg.Balance = balance
		fs, err := pfs.New(cfg.FS)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOn(cfg, fs)
		if err != nil {
			t.Fatalf("balance=%v: %v", balance, err)
		}
		if res.MeanRatio < 2 || res.WrittenBytes >= res.RawBytes {
			t.Fatalf("balance=%v: ratio %.2f, %d -> %d bytes",
				balance, res.MeanRatio, res.RawBytes, res.WrittenBytes)
		}
		// BP has no reservations, so nothing can overflow.
		if res.OverflowChunks != 0 {
			t.Fatalf("balance=%v: overflow on the multi-file backend", balance)
		}
		for _, f := range res.Files {
			if n, err := VerifySnapshot(fs, f, cfg); err != nil {
				t.Fatalf("balance=%v verify %s (%d checked): %v", balance, f, n, err)
			}
		}
		if _, err := VerifySnapshot(fs, "nyx-ours-final.bp", cfg); err != nil {
			t.Fatalf("balance=%v final: %v", balance, err)
		}
	}
}

func TestBaselineAndAsyncMultiFileBackend(t *testing.T) {
	for _, mode := range []Mode{Baseline, AsyncIO} {
		cfg := tinyNyx(2, mode)
		cfg.Backend = BackendBP
		fs, _ := pfs.New(cfg.FS)
		res, err := RunOn(cfg, fs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for _, f := range res.Files {
			if _, err := VerifyRawSnapshot(fs, f, cfg); err != nil {
				t.Fatalf("%s verify %s: %v", mode, f, err)
			}
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	cfg := tinyNyx(1, Ours)
	cfg.Backend = "netcdf"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestOursUnderInjectedFaults is the acceptance scenario: a Table-1-style
// run with a 5% transient write-failure rate must complete every iteration,
// every snapshot must verify (retried chunks are byte-identical, degraded
// chunks decode raw), and the failure counters must be populated.
func TestOursUnderInjectedFaults(t *testing.T) {
	for _, backend := range []string{BackendH5L, BackendBP} {
		cfg := tinyNyx(2, Ours)
		cfg.Backend = backend
		cfg.FS.Faults = &pfs.FaultPlan{Seed: 7, WriteErrorRate: 0.05}
		fs, err := pfs.New(cfg.FS)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOn(cfg, fs)
		if err != nil {
			t.Fatalf("%s: faulted run failed: %v", backend, err)
		}
		if len(res.PerIteration) != cfg.Iterations {
			t.Fatalf("%s: only %d iterations completed", backend, len(res.PerIteration))
		}
		if res.InjectedFaults == 0 {
			t.Fatalf("%s: 5%% fault rate injected nothing", backend)
		}
		if res.RetryAttempts == 0 {
			t.Fatalf("%s: faults injected but no retries recorded", backend)
		}
		for _, f := range append(res.Files, "nyx-ours-final."+backend) {
			if n, err := VerifySnapshot(fs, f, cfg); err != nil {
				t.Fatalf("%s verify %s (%d checked): %v", backend, f, n, err)
			}
		}
	}
}

// TestOursDegradedRunStillVerifies forces retry exhaustion: with one OST
// the write sequence is deterministic, tree sharing is off so the first
// writes are compressed chunks (metadata blobs carry no raw fallback), and
// FailFirstN=4 against a 2-attempt budget exhausts the first span (2
// attempts) and its first chunk (2 more) while letting the degrade write
// through. The degraded chunk must be counted, marked in the container, and
// still verify via the raw-decode path.
func TestOursDegradedRunStillVerifies(t *testing.T) {
	cfg := tinyNyx(1, Ours)
	cfg.TreeRebuild = 0
	cfg.FS.OSTs = 1
	cfg.FS.Faults = &pfs.FaultPlan{Seed: 7, FailFirstN: 4}
	cfg.Retry = &storage.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
	fs, err := pfs.New(cfg.FS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(cfg, fs)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if res.DegradedChunks == 0 || res.DegradedBytes == 0 {
		t.Fatalf("no degradation despite exhausted retries: %+v", res)
	}
	for _, f := range append(res.Files, "nyx-ours-final.h5l") {
		if _, err := VerifySnapshot(fs, f, cfg); err != nil {
			t.Fatalf("verify %s: %v", f, err)
		}
	}
}
