package simapp

import (
	"sync"

	"repro/internal/storage"
)

// degradeRouter fans the recovery layer's OnDegrade callbacks back to the
// rank that owns the dataset. The snapshot (and hence its RecoveryOptions)
// is shared by every rank, but the predictor that must learn about a
// degraded chunk — the achieved ratio is 1.0, not the predicted one — lives
// on the origin rank; each rank registers a handler per dataset it creates
// and the router dispatches by dataset name. It also aggregates the
// run-wide degraded totals for Result.
type degradeRouter struct {
	mu       sync.Mutex
	handlers map[string]func(chunk int, rawBytes int64)
	chunks   int
	bytes    int64
}

func newDegradeRouter() *degradeRouter {
	return &degradeRouter{handlers: make(map[string]func(int, int64))}
}

// register installs (or replaces, across iterations) the handler for one
// dataset name.
func (d *degradeRouter) register(dataset string, h func(chunk int, rawBytes int64)) {
	d.mu.Lock()
	d.handlers[dataset] = h
	d.mu.Unlock()
}

// dispatch is the RecoveryOptions.OnDegrade hook. It may run on any rank's
// writer goroutine (balancing moves writes across a node), so the handler
// is invoked outside the router lock.
func (d *degradeRouter) dispatch(dataset string, chunk int, rawBytes int64) {
	d.mu.Lock()
	d.chunks++
	d.bytes += rawBytes
	h := d.handlers[dataset]
	d.mu.Unlock()
	if h != nil {
		h(chunk, rawBytes)
	}
}

func (d *degradeRouter) totals() (chunks int, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.chunks, d.bytes
}

// armSnapshot wraps a freshly created snapshot with the run's retry policy
// and degrade routing. Called by rank 0 before the handle is broadcast, so
// every rank's writes share one armed snapshot.
func (rr *rankRun) armSnapshot(s storage.Snapshot) storage.Snapshot {
	return storage.WithRecovery(s, storage.RecoveryOptions{
		Policy:    rr.retry,
		Rec:       rr.rec(),
		OnDegrade: rr.router.dispatch,
	})
}
