package simapp

import (
	"bytes"
	"testing"

	"repro/internal/h5"
	"repro/internal/pfs"
	"repro/internal/predict"
)

// sbFixture builds a spanBuffer over a real (fast) file system so flushes
// land in an inspectable file.
func sbFixture(t *testing.T, capBytes int) (*spanBuffer, *pfs.FS, *h5.FileWriter) {
	t.Helper()
	cfg := pfs.Summit16()
	cfg.PerOSTBandwidth = 1 << 34
	cfg.Latency = 0
	fs, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := h5.Create(fs, "sb.h5l")
	if err != nil {
		t.Fatal(err)
	}
	rr := &rankRun{
		cfg:   Config{},
		fs:    fs,
		stats: &runStats{},
		ioP:   predict.NewIOPredictor(0.5),
	}
	return newSpanBuffer(rr, fw, capBytes), fs, fw
}

func fileBytes(t *testing.T, fs *pfs.FS, off, n int64) []byte {
	t.Helper()
	f, err := fs.Open("sb.h5l")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSpanBufferCoalescesContiguous(t *testing.T) {
	sb, fs, _ := sbFixture(t, 1024)
	base := int64(100)
	if err := sb.add(0, base, bytes.Repeat([]byte{1}, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sb.add(0, base+10, bytes.Repeat([]byte{2}, 10)); err != nil {
		t.Fatal(err)
	}
	if sb.blocks != 2 {
		t.Fatalf("blocks buffered: %d", sb.blocks)
	}
	if err := sb.flush(); err != nil {
		t.Fatal(err)
	}
	got := fileBytes(t, fs, base, 20)
	want := append(bytes.Repeat([]byte{1}, 10), bytes.Repeat([]byte{2}, 10)...)
	if !bytes.Equal(got, want) {
		t.Fatal("coalesced write corrupted data")
	}
	_, writes := fs.Stats()
	if writes != 1 {
		t.Fatalf("flushes: %d, want 1 coalesced write", writes)
	}
}

func TestSpanBufferGapFillWithinDataset(t *testing.T) {
	sb, fs, _ := sbFixture(t, 1024)
	// Chunk at 100 (8 bytes actual of a 20-byte reservation), next chunk's
	// reservation starts at 120: gap of 12 zero-filled.
	sb.add(0, 100, bytes.Repeat([]byte{7}, 8))
	sb.add(0, 120, bytes.Repeat([]byte{9}, 8))
	if err := sb.flush(); err != nil {
		t.Fatal(err)
	}
	got := fileBytes(t, fs, 100, 28)
	if !bytes.Equal(got[:8], bytes.Repeat([]byte{7}, 8)) ||
		!bytes.Equal(got[20:], bytes.Repeat([]byte{9}, 8)) {
		t.Fatal("payloads misplaced")
	}
	for _, b := range got[8:20] {
		if b != 0 {
			t.Fatal("slack not zero-filled")
		}
	}
	_, writes := fs.Stats()
	if writes != 1 {
		t.Fatalf("writes: %d", writes)
	}
}

func TestSpanBufferFlushBoundaries(t *testing.T) {
	sb, fs, _ := sbFixture(t, 64)
	// Dataset switch flushes.
	sb.add(0, 0, make([]byte, 8))
	sb.add(1, 8, make([]byte, 8))
	if _, writes := fs.Stats(); writes != 1 {
		t.Fatal("dataset switch did not flush")
	}
	// Backward offset flushes (overflow-relocated chunk).
	sb.add(1, 4, make([]byte, 8))
	if _, writes := fs.Stats(); writes != 2 {
		t.Fatal("backward offset did not flush")
	}
	// Oversized gap flushes.
	sb.add(1, 4+8+1000, make([]byte, 8))
	if _, writes := fs.Stats(); writes != 3 {
		t.Fatal("oversized gap did not flush")
	}
	// Capacity flushes immediately.
	sb.flush()
	sb.add(2, 5000, make([]byte, 64))
	if sb.blocks != 0 {
		t.Fatal("capacity reach did not flush")
	}
}

func TestSpanBufferEmptyFlushIsNoop(t *testing.T) {
	sb, fs, _ := sbFixture(t, 64)
	if err := sb.flush(); err != nil {
		t.Fatal(err)
	}
	if _, writes := fs.Stats(); writes != 0 {
		t.Fatal("empty flush wrote")
	}
}
