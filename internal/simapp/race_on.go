//go:build race

package simapp

// raceEnabled reports whether the race detector is active; wall-clock
// comparisons are skipped under it because instrumentation slows real
// compression work ~10x while sleeps are unaffected, distorting timings.
const raceEnabled = true
