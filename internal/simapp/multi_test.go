package simapp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/coord"
	"repro/internal/pfs"
)

// TestMultiAppContention is the K=3 contention smoke `make contentiontest`
// gates on: three applications share one file system with injected write
// faults and a burst buffer, launched on the periodic coordinator's offsets.
// Every snapshot of every application must verify chunk-by-chunk within the
// error bound, and the byte accounting must be exact per app — the
// digest-level check that contention and fault recovery corrupted nothing.
func TestMultiAppContention(t *testing.T) {
	const K = 3
	cfgs := make([]Config, K)
	for i := range cfgs {
		cfg := tinyNyx(2, Ours)
		cfg.Iterations = 2
		cfg.Name = fmt.Sprintf("nyx-%c", 'a'+rune(i))
		cfgs[i] = cfg
	}
	fsCfg := cfgs[0].FS
	fsCfg.Faults = &pfs.FaultPlan{Seed: 7, WriteErrorRate: 0.05}
	fsCfg.BB = &pfs.BBConfig{CapacityBytes: 64 << 20}
	fs, err := pfs.New(fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultiOn(cfgs, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coordinated || res.Period <= 0 {
		t.Fatalf("coordinator did not run: %+v", res)
	}
	if !res.BB.Enabled || res.BB.Absorbs == 0 {
		t.Fatalf("burst buffer absorbed nothing: %+v", res.BB)
	}
	for i, app := range res.Apps {
		cfg := cfgs[i]
		wantRaw := int64(cfg.Ranks*len(cfg.Specs)*cfg.Dims.N()*4) * int64(cfg.Iterations)
		if app.RawBytes != wantRaw {
			t.Errorf("app %s raw bytes %d, want %d", cfg.Name, app.RawBytes, wantRaw)
		}
		// Ours mode records the in-loop dumps (the final dump is untracked).
		if len(app.Files) != cfg.Iterations-1 {
			t.Errorf("app %s wrote %d snapshots, want %d", cfg.Name, len(app.Files), cfg.Iterations-1)
		}
		for _, f := range app.Files {
			checked, err := VerifySnapshot(fs, f, cfg)
			if err != nil {
				t.Errorf("app %s snapshot %s: %v", cfg.Name, f, err)
			} else if checked == 0 {
				t.Errorf("app %s snapshot %s verified zero chunks", cfg.Name, f)
			}
		}
	}
}

// TestMultiAppDistinctNames: colliding app names would overwrite each
// other's snapshot files, so RunMulti must refuse them.
func TestMultiAppDistinctNames(t *testing.T) {
	cfgs := []Config{tinyNyx(1, Ours), tinyNyx(1, Ours)}
	if _, err := RunMulti(cfgs, cfgs[0].FS, false); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

// TestProfilesFeedCoordinator: the derived profiles carry the raw dump
// volume and the nominal iteration span, and the coordinator's schedule
// serializes the I/O windows.
func TestProfilesFeedCoordinator(t *testing.T) {
	cfgs := []Config{tinyNyx(2, Ours), tinyNyx(4, Ours)}
	cfgs[0].Name = "a"
	cfgs[1].Name = "b"
	profs := Profiles(cfgs)
	if profs[0].Name != "a" || profs[1].Name != "b" {
		t.Fatalf("profile names %q/%q", profs[0].Name, profs[1].Name)
	}
	want0 := int64(2 * len(cfgs[0].Specs) * cfgs[0].Dims.N() * 4)
	if profs[0].IOVolume != want0 {
		t.Fatalf("profile volume %d, want %d", profs[0].IOVolume, want0)
	}
	if profs[0].Compute != (2 * cfgs[0].ComputeTime).Seconds() {
		t.Fatalf("profile compute %v", profs[0].Compute)
	}
	sched, err := coord.Plan(profs, 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Windows are laid end to end: window 1 starts where window 0 ends.
	if got := sched.Windows[1]; math.Abs(got-sched.IOTimes[0]) > 1e-12 {
		t.Fatalf("window 1 at %v, want %v", got, sched.IOTimes[0])
	}
	if sched.Busy <= 0 || sched.Busy > 1 {
		t.Fatalf("busy fraction %v", sched.Busy)
	}
	if sched.Period < sched.IOTimes[0]+sched.IOTimes[1] {
		t.Fatalf("period %v cannot serialize I/O %v", sched.Period, sched.IOTimes)
	}
}
