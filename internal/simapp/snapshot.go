package simapp

import (
	"fmt"
	"time"

	"repro/internal/bp"
	"repro/internal/h5"
	"repro/internal/pfs"
)

// Backend names for Config.Backend.
const (
	BackendH5L = "h5l" // shared-file container with reserved extents (default)
	BackendBP  = "bp"  // multi-file ADIOS-style container (paper future work)
)

func (c Config) backend() string {
	if c.Backend == "" {
		return BackendH5L
	}
	return c.Backend
}

// chunkedDataset is the method set shared by both backends' dataset writers.
type chunkedDataset interface {
	WriteChunk(i int, data []byte) (time.Duration, error)
}

// snap wraps whichever container backs one dump. Exactly one of fw/bw is
// non-nil; the struct is shared by every rank (parallel writes).
type snap struct {
	name string
	fw   *h5.FileWriter
	bw   *bp.Writer
}

// createSnap is called on rank 0 only; the result is Bcast to the others.
func createSnap(fs *pfs.FS, backend, name string, ranks int) (*snap, error) {
	switch backend {
	case BackendH5L:
		fw, err := h5.Create(fs, name)
		if err != nil {
			return nil, err
		}
		return &snap{name: name, fw: fw}, nil
	case BackendBP:
		bw, err := bp.Create(fs, name, ranks)
		if err != nil {
			return nil, err
		}
		return &snap{name: name, bw: bw}, nil
	default:
		return nil, fmt.Errorf("simapp: unknown backend %q", backend)
	}
}

// createRawDataset registers an uncompressed per-rank field dataset
// (Baseline and AsyncIO modes) on either backend.
func (s *snap) createRawDataset(rr *rankRun, fi, iter int, rawLen int64) (chunkedDataset, error) {
	dims := []int{rr.cfg.Dims.X, rr.cfg.Dims.Y, rr.cfg.Dims.Z}
	attrs := map[string]string{
		"field": rr.cfg.Specs[fi].Name,
		"iter":  fmt.Sprint(iter),
	}
	if s.fw != nil {
		return s.fw.CreateDataset(rr.dsName(fi), dims, 4, h5.FilterNone,
			[]int64{rawLen}, []int64{rawLen}, attrs)
	}
	return s.bw.CreateDataset(rr.rank(), rr.dsName(fi), dims, 4, bp.FilterNone,
		[]int64{rawLen}, attrs)
}

// persistBlob stores a small metadata blob (the shared Huffman tree) as a
// one-chunk dataset.
func (s *snap) persistBlob(rr *rankRun, name string, blob []byte) error {
	var ds chunkedDataset
	var err error
	if s.fw != nil {
		ds, err = s.fw.CreateDataset(name, []int{len(blob)}, 1, h5.FilterNone,
			[]int64{int64(len(blob))}, []int64{int64(len(blob))}, nil)
	} else {
		ds, err = s.bw.CreateDataset(rr.rank(), name, []int{len(blob)}, 1,
			bp.FilterNone, []int64{int64(len(blob))}, nil)
	}
	if err != nil {
		return err
	}
	_, err = ds.WriteChunk(0, blob)
	return err
}

// close finalizes the container (rank 0 only) and returns overflow counts
// (zero for BP: no reservations, nothing to overflow — the §6 multi-file
// advantage).
func (s *snap) close() (overflowChunks int, err error) {
	if s.fw != nil {
		oc, _ := s.fw.OverflowStats()
		return oc, s.fw.Close()
	}
	return 0, s.bw.Close()
}

// snapReader abstracts reading either backend for verification.
type snapReader interface {
	ReadChunk(name string, i int) ([]byte, error)
}

// openSnap opens a written snapshot with the right backend reader and a
// uniform attrs accessor.
func openSnap(fs *pfs.FS, backend, name string) (snapReader, func(ds string) (map[string]string, error), error) {
	switch backend {
	case BackendH5L:
		fr, err := h5.Open(fs, name)
		if err != nil {
			return nil, nil, err
		}
		attrs := func(ds string) (map[string]string, error) {
			dm, err := fr.Dataset(ds)
			if err != nil {
				return nil, err
			}
			return dm.Attrs, nil
		}
		return fr, attrs, nil
	case BackendBP:
		br, err := bp.Open(fs, name)
		if err != nil {
			return nil, nil, err
		}
		attrs := func(ds string) (map[string]string, error) {
			dm, err := br.Dataset(ds)
			if err != nil {
				return nil, err
			}
			return dm.Attrs, nil
		}
		return br, attrs, nil
	default:
		return nil, nil, fmt.Errorf("simapp: unknown backend %q", backend)
	}
}
