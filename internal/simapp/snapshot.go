package simapp

import (
	"fmt"

	"repro/internal/storage"
)

// Backend names for Config.Backend, re-exported from the storage registry.
const (
	BackendH5L = storage.H5L // shared-file container with reserved extents (default)
	BackendBP  = storage.BP  // multi-file ADIOS-style container (paper future work)
)

func (c Config) backend() string {
	if c.Backend == "" {
		return BackendH5L
	}
	return c.Backend
}

// storageBackend resolves the configured container format from the registry;
// everything downstream goes through the storage interfaces, never through a
// format switch.
func (c Config) storageBackend() (storage.Backend, error) {
	return storage.ByName(c.backend())
}

// createRawDataset registers an uncompressed per-rank field dataset
// (Baseline and AsyncIO modes).
func (rr *rankRun) createRawDataset(sn storage.Snapshot, fi, iter int, rawLen int64) (storage.DatasetWriter, error) {
	return sn.CreateDataset(storage.DatasetSpec{
		Rank:     rr.rank(),
		Name:     rr.dsName(fi),
		Dims:     []int{rr.cfg.Dims.X, rr.cfg.Dims.Y, rr.cfg.Dims.Z},
		ElemSize: 4,
		RawSizes: []int64{rawLen},
		Attrs: map[string]string{
			"field": rr.cfg.Specs[fi].Name,
			"iter":  fmt.Sprint(iter),
		},
	})
}

// persistBlob stores a small metadata blob (the shared Huffman tree) as a
// one-chunk dataset.
func (rr *rankRun) persistBlob(sn storage.Snapshot, name string, blob []byte) error {
	ds, err := sn.CreateDataset(storage.DatasetSpec{
		Rank:     rr.rank(),
		Name:     name,
		Dims:     []int{len(blob)},
		ElemSize: 1,
		RawSizes: []int64{int64(len(blob))},
	})
	if err != nil {
		return err
	}
	_, err = ds.WriteChunk(0, blob)
	return err
}
