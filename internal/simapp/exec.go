package simapp

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// segment is one immovable busy interval on a thread, at a fixed offset
// from the iteration start (the Y_i / G_i of §3.1). The busy time itself is
// a sleep: it stands for GPU compute or MPI communication during which this
// CPU thread is unavailable for compression/IO work.
type segment struct {
	start, dur time.Duration
}

// wtask is one schedulable task for the wall-clock executor.
type wtask struct {
	id    int
	pred  time.Duration   // planner's duration estimate (gap-fit test)
	ready <-chan struct{} // optional release (I/O waits for compression)
	run   func() error    // the real work
	// label/cat, when label is non-empty, make the traced executor emit a
	// span around run(). Left empty for tasks whose work emits its own span
	// (compression: sz.Compress records it, with the achieved ratio).
	label string
	cat   string
}

// runThread is the wall-clock twin of sim.ExecuteThread: segments want to
// run at their nominal offsets; tasks run in plan order, launched into a
// gap only when their prediction says they fit before the next segment.
// A task that overruns (or a late release) delays subsequent segments —
// real interference, measured by the caller via iteration wall time.
func runThread(start time.Time, segs []segment, tasks []wtask) error {
	return runThreadObs(nil, 0, obs.ThreadMain, start, segs, tasks)
}

// runThreadObs is runThread with instrumentation: each segment becomes an
// obstacle span (flagging any delay past its nominal offset) and each
// labelled task a task span, on rank's thread-`th` trace row. A nil
// recorder makes it exactly runThread.
func runThreadObs(rec *obs.Recorder, rank int, th obs.Thread, start time.Time, segs []segment, tasks []wtask) error {
	obstacleName := "compute"
	if th != obs.ThreadMain {
		obstacleName = "core task"
	}
	si := 0
	runSeg := func() {
		s := segs[si]
		if d := time.Until(start.Add(s.start)); d > 0 {
			time.Sleep(d)
		}
		segStart := rec.Now()
		time.Sleep(s.dur)
		if rec.Enabled() {
			sp := obs.Span{
				Name: obstacleName, Cat: "obstacle",
				Rank: rank, Thread: th, Block: obs.NoBlock,
			}
			if delay := segStart.Sub(start.Add(s.start)); delay > time.Millisecond {
				sp.Extra = fmt.Sprintf("delayed %.4fs by scheduled tasks", delay.Seconds())
			}
			rec.WallSpan(sp, segStart, rec.Now())
		}
		si++
	}
	for _, t := range tasks {
		if t.ready != nil {
			<-t.ready
		}
		for {
			now := time.Since(start)
			if si < len(segs) && now+t.pred > segs[si].start {
				runSeg()
				continue
			}
			t0 := rec.Now()
			if err := t.run(); err != nil {
				return err
			}
			if rec.Enabled() && t.label != "" {
				rec.WallSpan(obs.Span{
					Name: t.label, Cat: t.cat,
					Rank: rank, Thread: th, Block: obs.NoBlock,
				}, t0, rec.Now())
			}
			break
		}
	}
	for si < len(segs) {
		runSeg()
	}
	return nil
}

// layoutSegments spreads n busy intervals totalling busy over a nominal
// iteration of length span, with equal gaps before, between, and after.
func layoutSegments(span, busy time.Duration, n int) []segment {
	if n < 1 || busy <= 0 {
		return nil
	}
	if busy > span {
		busy = span
	}
	segDur := busy / time.Duration(n)
	gap := (span - busy) / time.Duration(n+1)
	segs := make([]segment, n)
	t := gap
	for i := range segs {
		segs[i] = segment{start: t, dur: segDur}
		t += segDur + gap
	}
	return segs
}
