// Package coord computes cluster-wide periodic I/O schedules for multiple
// applications sharing one parallel file system, after Aupy et al.'s
// "Periodic I/O scheduling for super-computers": each application is reduced
// to a (compute time, I/O volume) profile, the cluster picks one global
// period, and each application's I/O phase is placed at a fixed offset
// within the period so that, in the steady state, at most one application
// owns the PFS burst at a time.
//
// The derivation (DESIGN.md §14.3): with per-application I/O time
// io_i = volume_i / aggregateBW, the period must be long enough to hold
// every application's own iteration (max_i(compute_i + io_i)) and long
// enough to serialize all I/O phases (Σ io_i); the schedule uses the larger
// of the two. I/O windows are then laid end to end — window i starts at
// w_i = Σ_{j<i} io_j — and because an application reaches its I/O phase
// compute_i after it starts, its start offset is (w_i − compute_i) mod P.
package coord

import (
	"fmt"
	"math"
)

// AppProfile is one application's scheduling profile.
type AppProfile struct {
	// Name identifies the application (for reporting; must be unique when
	// profiles come from simapp configs).
	Name string
	// Compute is the per-iteration compute+communication time in seconds
	// (the span between consecutive I/O phases).
	Compute float64
	// IOVolume is the bytes the application writes per iteration.
	IOVolume int64
}

// Schedule is a periodic cluster-wide I/O placement.
type Schedule struct {
	// Period is the global period in seconds.
	Period float64
	// IOTimes[i] is application i's I/O-phase length in seconds.
	IOTimes []float64
	// Windows[i] is the start of application i's I/O window within the
	// period, in seconds from the period origin.
	Windows []float64
	// Offsets[i] is application i's start-time stagger in seconds: launch
	// app i at t = Offsets[i] and its first I/O phase lands in its window.
	Offsets []float64
	// Busy is the fraction of the period the PFS is driven by some
	// application's scheduled I/O (Σ io_i / Period, ≤ 1 by construction).
	Busy float64
}

// Plan derives the periodic schedule for apps over a file system whose
// aggregate write bandwidth is aggregateBW bytes/second.
func Plan(apps []AppProfile, aggregateBW float64) (*Schedule, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("coord: no applications")
	}
	if aggregateBW <= 0 {
		return nil, fmt.Errorf("coord: aggregate bandwidth %v <= 0", aggregateBW)
	}
	s := &Schedule{
		IOTimes: make([]float64, len(apps)),
		Windows: make([]float64, len(apps)),
		Offsets: make([]float64, len(apps)),
	}
	var sumIO, maxSpan float64
	for i, a := range apps {
		if a.Compute < 0 {
			return nil, fmt.Errorf("coord: app %q has negative compute time", a.Name)
		}
		if a.IOVolume < 0 {
			return nil, fmt.Errorf("coord: app %q has negative I/O volume", a.Name)
		}
		io := float64(a.IOVolume) / aggregateBW
		s.IOTimes[i] = io
		sumIO += io
		if span := a.Compute + io; span > maxSpan {
			maxSpan = span
		}
	}
	s.Period = math.Max(maxSpan, sumIO)
	if s.Period == 0 {
		// All-zero profiles: a degenerate but valid schedule.
		s.Busy = 0
		return s, nil
	}
	w := 0.0
	for i, a := range apps {
		s.Windows[i] = w
		s.Offsets[i] = math.Mod(w-a.Compute, s.Period)
		if s.Offsets[i] < 0 {
			s.Offsets[i] += s.Period
		}
		w += s.IOTimes[i]
	}
	s.Busy = sumIO / s.Period
	return s, nil
}
