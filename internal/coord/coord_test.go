package coord

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPlanSerializesWindows(t *testing.T) {
	apps := []AppProfile{
		{Name: "a", Compute: 2, IOVolume: 100},
		{Name: "b", Compute: 3, IOVolume: 200},
		{Name: "c", Compute: 1, IOVolume: 100},
	}
	s, err := Plan(apps, 100) // io times: 1, 2, 1
	if err != nil {
		t.Fatal(err)
	}
	// Period = max(max span, sum io) = max(3+2, 4) = 5.
	if !approx(s.Period, 5) {
		t.Fatalf("period %v, want 5", s.Period)
	}
	wantWindows := []float64{0, 1, 3}
	for i, w := range s.Windows {
		if !approx(w, wantWindows[i]) {
			t.Fatalf("windows %v, want %v", s.Windows, wantWindows)
		}
	}
	// Windows never overlap inside the period.
	for i := 0; i < len(apps)-1; i++ {
		if s.Windows[i]+s.IOTimes[i] > s.Windows[i+1]+1e-9 {
			t.Fatalf("window %d overlaps %d: %v + %v", i, i+1, s.Windows[i], s.IOTimes[i])
		}
	}
	if !approx(s.Busy, 4.0/5.0) {
		t.Fatalf("busy %v, want 0.8", s.Busy)
	}
	// Offsets place each app so compute ends at its window: offset + compute
	// ≡ window (mod period), and every offset is in [0, period).
	for i, a := range apps {
		if s.Offsets[i] < 0 || s.Offsets[i] >= s.Period {
			t.Fatalf("offset %d = %v outside [0, %v)", i, s.Offsets[i], s.Period)
		}
		end := math.Mod(s.Offsets[i]+a.Compute, s.Period)
		if !approx(end, math.Mod(s.Windows[i], s.Period)) {
			t.Fatalf("app %d: compute ends at %v, window at %v", i, end, s.Windows[i])
		}
	}
}

func TestPlanIOBoundPeriod(t *testing.T) {
	// I/O-dominated cluster: the period must stretch to Σ io even though no
	// single app needs it.
	apps := []AppProfile{
		{Name: "a", Compute: 0.1, IOVolume: 300},
		{Name: "b", Compute: 0.1, IOVolume: 300},
	}
	s, err := Plan(apps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Period, 6) {
		t.Fatalf("period %v, want 6 (= sum of I/O)", s.Period)
	}
	if !approx(s.Busy, 1) {
		t.Fatalf("busy %v, want 1", s.Busy)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(nil, 100); err == nil {
		t.Error("empty app list accepted")
	}
	if _, err := Plan([]AppProfile{{Name: "a"}}, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := Plan([]AppProfile{{Name: "a", Compute: -1}}, 100); err == nil {
		t.Error("negative compute accepted")
	}
	if _, err := Plan([]AppProfile{{Name: "a", IOVolume: -1}}, 100); err == nil {
		t.Error("negative volume accepted")
	}
	// Degenerate all-zero profiles still plan (period 0, busy 0).
	s, err := Plan([]AppProfile{{Name: "a"}}, 100)
	if err != nil || s.Period != 0 || s.Busy != 0 {
		t.Errorf("degenerate plan: %+v, %v", s, err)
	}
}
